"""Integration tests for the baseline stores: S-Seq, A-Seq, GentleRain,
Cure, and the eventually consistent yardstick."""

import pytest

from repro.baselines import build_system
from repro.baselines.gst import GstTimings
from repro.checker import CausalChecker, SessionHistory
from repro.geo.system import GeoSystemSpec
from repro.metrics import percentile
from repro.workload import WorkloadSpec


SPEC = GeoSystemSpec(n_dcs=3, partitions_per_dc=2, clients_per_dc=3, seed=17)
WL = WorkloadSpec(read_ratio=0.75, n_keys=48)


def run_protocol(protocol, duration=2.5, drain=3.0, history=None, **kwargs):
    system = build_system(protocol, SPEC, WL, history=history, **kwargs)
    system.run(duration)
    system.quiesce(drain)
    return system


@pytest.mark.parametrize("protocol",
                         ["sseq", "aseq", "gentlerain", "cure", "eventual"])
def test_baseline_converges(protocol):
    system = run_protocol(protocol)
    assert system.converged()
    assert system.total_throughput() > 0


@pytest.mark.parametrize("protocol", ["sseq", "gentlerain", "cure"])
def test_causal_baselines_pass_session_checks(protocol):
    history = SessionHistory()
    system = run_protocol(protocol, history=history)
    checker = CausalChecker(history)
    assert checker.check() == []
    assert checker.check_write_read_pairs() == []
    assert history.total_ops > 500


def test_sseq_visibility_near_optimal():
    system = run_protocol("sseq")
    extras = system.visibility_extra_ms(0, 1)
    assert extras
    assert percentile(extras, 90) < 10.0  # near-zero extra delay


def test_gentlerain_false_dependency_floor():
    """No dc1→dc2 update visible with less extra delay than the far-DC gap.

    dc2↔dc3 RTT is 160 ms vs 80 ms for dc1↔dc2: the scalar GST waits for
    heartbeats from dc3, adding ≈ (160-80)/2 = 40 ms to every近 update.
    """
    system = run_protocol("gentlerain", duration=4.0)
    extras = system.visibility_extra_ms(0, 1)
    assert extras
    assert min(extras) > 30.0


def test_cure_beats_gentlerain_on_near_pair():
    gr = run_protocol("gentlerain", duration=4.0)
    cure = run_protocol("cure", duration=4.0)
    gr_p90 = percentile(gr.visibility_extra_ms(0, 1), 90)
    cure_p90 = percentile(cure.visibility_extra_ms(0, 1), 90)
    assert cure_p90 < gr_p90


def test_gentlerain_interval_trades_visibility(env):
    fast = run_protocol("gentlerain", duration=3.0,
                        timings=GstTimings(gst_interval=0.002))
    slow = run_protocol("gentlerain", duration=3.0,
                        timings=GstTimings(gst_interval=0.050))
    fast_p90 = percentile(fast.visibility_extra_ms(0, 1), 90)
    slow_p90 = percentile(slow.visibility_extra_ms(0, 1), 90)
    assert slow_p90 > fast_p90 + 20.0  # interval dominates the extra delay


def test_eventual_has_zero_extra_visibility():
    system = run_protocol("eventual")
    extras = system.visibility_extra_ms(0, 1)
    assert extras
    assert max(extras) == 0.0


def test_eventual_exposes_no_causal_metadata():
    history = SessionHistory()
    system = run_protocol("eventual", history=history)
    assert all(record.vts == () for client in history.clients()
               for record in history.session(client))


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        build_system("nonsense", SPEC, WL)


def test_gst_partitions_track_remote_heartbeats():
    system = build_system("gentlerain", SPEC, WL)
    system.run(1.0)
    partition = system.datacenters[0].partitions[0]
    # heartbeats every 10ms must have advanced both remote VV entries
    assert partition.vv[1] > 0
    assert partition.vv[2] > 0


def test_gst_summary_is_monotone():
    system = build_system("cure", SPEC, WL)
    system.start()
    partition = system.datacenters[0].partitions[1]
    seen = []

    def sample():
        seen.append(partition.summary)

    for i in range(1, 40):
        system.env.loop.schedule(i * 0.025, sample)
    system.env.run(until=1.0)
    for a, b in zip(seen, seen[1:]):
        assert all(x <= y for x, y in zip(a, b))
