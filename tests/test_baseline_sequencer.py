"""Tests for the sequencer service and its chain-replicated variant."""

import pytest

from repro.baselines.messages import SeqReply, SeqRequest
from repro.baselines.sequencer import ChainSequencerNode, Sequencer, build_chain
from repro.calibration import Calibration
from repro.core.messages import RemoteStableBatch
from repro.kvstore.types import Update
from repro.sim import ConstantLatency, Environment, Network, Process


class Requester(Process):
    def __init__(self, env, name="req"):
        super().__init__(env, name)
        self.replies = []

    def on_seq_reply(self, msg, src):
        self.replies.append(msg)


class Dest(Process):
    def __init__(self, env):
        super().__init__(env, "dest", site=1)
        self.ops = []

    def on_remote_stable_batch(self, msg, src):
        self.ops.extend(msg.ops)


def make_update(seq, vts=(0, 0)):
    return Update(key=f"k{seq}", value=None, origin_dc=0, partition_index=0,
                  seq=seq, ts=0, vts=vts, commit_time=0.0)


def test_sequencer_assigns_consecutive_numbers(env, net):
    seq = Sequencer(env, "seq", 0)
    requester = Requester(env)
    for i in range(1, 4):
        requester.send(seq, SeqRequest(make_update(i)))
    env.run()
    assert [r.vts[0] for r in requester.replies] == [1, 2, 3]
    assert seq.counter == 3


def test_sequencer_merges_client_vector(env, net):
    seq = Sequencer(env, "seq", 0)
    requester = Requester(env)
    requester.send(seq, SeqRequest(make_update(1, vts=(0, 42))))
    env.run()
    assert requester.replies[0].vts == (1, 42)


def test_sequencer_ships_ordered_stream(env, net):
    seq = Sequencer(env, "seq", 0)
    dest = Dest(env)
    seq.add_destination(dest)
    requester = Requester(env)
    for i in range(1, 5):
        requester.send(seq, SeqRequest(make_update(i)))
    env.run()
    assert [op.ts for op in dest.ops] == [1, 2, 3, 4]


def test_sequencer_service_cost_bounds_throughput(env):
    Network(env, ConstantLatency(0.0001))
    cal = Calibration(scale=1.0)  # real-scale: 20.8µs per request
    seq = Sequencer(env, "seq", 0, calibration=cal)
    requester = Requester(env)
    for i in range(1, 1002):
        requester.send(seq, SeqRequest(make_update(i)))
    env.run()
    # 1001 requests serialized at 20.8µs -> last reply ~ 20.8ms later
    last_reply_at = env.now
    assert last_reply_at == pytest.approx(1001 * 20.8e-6 + 0.0002, rel=0.05)


class TestChain:
    def test_build_chain_links_nodes(self, env, net):
        nodes = build_chain(env, 0, 3)
        assert nodes[0].is_head and nodes[2].is_tail
        assert nodes[0].successor is nodes[1]
        assert nodes[1].successor is nodes[2]

    def test_chain_assigns_and_replies_from_tail(self, env, net):
        nodes = build_chain(env, 0, 3)
        dest = Dest(env)
        nodes[-1].add_destination(dest)
        requester = Requester(env)
        requester.send(nodes[0], SeqRequest(make_update(1)))
        env.run()
        assert requester.replies[0].vts[0] == 1
        assert [op.ts for op in dest.ops] == [1]

    def test_every_node_logs_every_assignment(self, env, net):
        nodes = build_chain(env, 0, 3)
        requester = Requester(env)
        for i in range(1, 4):
            requester.send(nodes[0], SeqRequest(make_update(i)))
        env.run()
        assert all(len(node.log) == 3 for node in nodes)

    def test_requests_must_enter_at_head(self, env, net):
        nodes = build_chain(env, 0, 2)
        requester = Requester(env)
        requester.send(nodes[1], SeqRequest(make_update(1)))
        with pytest.raises(RuntimeError):
            env.run()

    def test_chain_rejects_zero_length(self, env):
        with pytest.raises(ValueError):
            build_chain(env, 0, 0)
