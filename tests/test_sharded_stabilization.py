"""Tests for sharded Eunomia stabilization (shards + merging coordinator).

The load-bearing property: for the same input timelines, the K-shard
deployment must emit *op-for-op the same stable serialization* as the K=1
single stabilizer — sharding is an implementation strategy, not a semantic
change (Properties 1–2 preserved through the K-way merge).  The replicated
composition (Alg. 4 × K shards) extends the property: the *deduplicated*
delivered stream must stay identical even when the leader replica group
crashes mid-run and a follower takes over.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import Calibration
from repro.checker import CausalChecker, SessionHistory
from repro.core import (
    EunomiaConfig,
    EunomiaService,
    EunomiaShard,
    ReplicatedShardCoordinator,
    ShardCoordinator,
    ShardMap,
    TreeRelay,
    build_stabilizer_stack,
)
from repro.core.messages import AddOpBatch, PartitionHeartbeat, ShardStableBatch
from repro.geo.system import GeoSystemSpec, build_eunomia_system
from repro.harness.loadgen import build_eunomia_rig
from repro.kvstore.types import Update
from repro.sim import ConstantLatency, Environment, Network, Process
from repro.workload import WorkloadSpec


def make_op(ts, partition=0, seq=None):
    return Update(key=f"k{ts}", value=None, origin_dc=0,
                  partition_index=partition,
                  seq=seq if seq is not None else ts,
                  ts=ts, vts=(ts,), commit_time=0.0)


class Sink(Process):
    def __init__(self, env):
        super().__init__(env, "sink", site=1)
        self.batches = []

    def on_remote_stable_batch(self, msg, src):
        self.batches.append(msg)

    @property
    def ops(self):
        return [op for batch in self.batches for op in batch.ops]


class ShardSink(Process):
    """Collects ShardStableBatch (stands in for the coordinator)."""

    def __init__(self, env):
        super().__init__(env, "shard-sink", site=0)
        self.batches = []

    def on_shard_stable_batch(self, msg, src):
        self.batches.append(msg)


class DedupSink(Process):
    """A remote sink with Algorithm 5's per-origin dedup.

    A new leader legitimately re-ships the window between the last prune
    gossip and the crash; real receivers drop that overlap against the
    highest ``(ts, origin, seq)`` key already enqueued per origin DC
    (see ``repro.geo.receiver``), so the equivalence tests compare the
    *deduplicated* stream.
    """

    def __init__(self, env):
        super().__init__(env, "sink", site=1)
        self.ops = []
        self.duplicates = 0
        self._last = {}

    def on_remote_stable_batch(self, msg, src):
        last = self._last.get(msg.origin_dc, (0, -1, -1))
        for op in msg.ops:
            key = op.order_key()
            if key <= last:
                self.duplicates += 1
                continue
            last = key
            self.ops.append(op)
        self._last[msg.origin_dc] = last


class AckFeeder(Process):
    """Feeds batches directly and swallows the replicas' Alg. 4 acks."""

    def on_batch_ack(self, msg, src):
        pass


# ----------------------------------------------------------------------
# ShardMap / config validation
# ----------------------------------------------------------------------
class TestShardAssignment:
    def test_stride_policy_round_robins(self):
        m = ShardMap(8, 4, "stride")
        assert [m.shard_of(p) for p in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert m.owned_by(1) == [1, 5]

    def test_block_policy_is_contiguous(self):
        m = ShardMap(8, 3, "block")
        owned = [m.owned_by(s) for s in range(3)]
        assert owned == [[0, 1, 2], [3, 4, 5], [6, 7]]

    def test_every_shard_owns_something(self):
        for n_parts in (2, 3, 8, 13):
            for k in range(1, n_parts + 1):
                for policy in ("stride", "block"):
                    m = ShardMap(n_parts, k, policy)
                    assert all(m.owned_by(s) for s in range(k))
                    assert sorted(sum((m.owned_by(s) for s in range(k)), [])) \
                        == list(range(n_parts))

    def test_more_shards_than_partitions_rejected(self):
        with pytest.raises(ValueError, match="some shards would track no"):
            ShardMap(2, 4)

    def test_zero_shards_rejected_by_config(self):
        with pytest.raises(ValueError, match="at least one Eunomia shard"):
            EunomiaConfig(n_shards=0).validate()

    def test_sharding_composes_with_fault_tolerance(self):
        """The Alg. 4 × K composition validates (PR 1's rejection lifted)."""
        EunomiaConfig(n_shards=4, fault_tolerant=True,
                      n_replicas=3).validate()

    def test_sharding_with_ft_still_rejects_propagation_tree(self):
        with pytest.raises(ValueError, match="propagation tree"):
            EunomiaConfig(n_shards=2, fault_tolerant=True, n_replicas=2,
                          use_propagation_tree=True).validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown shard policy"):
            EunomiaConfig(n_shards=2, shard_policy="hash").validate()

    def test_oversharded_deployment_rejected_at_build(self):
        with pytest.raises(ValueError, match="some shards would track no"):
            build_eunomia_system(
                GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=1),
                WorkloadSpec(), config=EunomiaConfig(n_shards=4))


# ----------------------------------------------------------------------
# Determinism: K-shard output == K=1 output, op for op
# ----------------------------------------------------------------------
def run_stabilization(ts_by_partition, n_shards, batch_size=3):
    """Feed fixed per-partition timelines; return the emitted stable order."""
    env = Environment(seed=42)
    Network(env, ConstantLatency(0.0001))
    n_parts = len(ts_by_partition)
    config = EunomiaConfig(stabilization_interval=0.004, n_shards=n_shards)
    sink = Sink(env)

    if n_shards == 1:
        service = EunomiaService(env, "eunomia", 0, n_parts, config)
        service.add_destination(sink)
        service.start()
        targets = {p: service for p in range(n_parts)}
    else:
        shard_map = ShardMap(n_parts, n_shards, config.shard_policy)
        coordinator = ShardCoordinator(env, "coord", 0, n_shards, config)
        coordinator.add_destination(sink)
        targets = {}
        for sid in range(n_shards):
            shard = EunomiaShard(env, f"shard{sid}", 0, n_parts, config,
                                 shard_id=sid, owned=shard_map.owned_by(sid))
            shard.set_coordinator(coordinator)
            shard.start()
            for p in shard.owned:
                targets[p] = shard
        coordinator.start()

    feeder = Process(env, "feeder")
    top = 0
    for p, ts_list in enumerate(ts_by_partition):
        ops = [make_op(ts, p, seq=i + 1) for i, ts in enumerate(ts_list)]
        prev = 0
        for i in range(0, len(ops), batch_size):
            chunk = ops[i:i + batch_size]
            feeder.send(targets[p], AddOpBatch(p, tuple(chunk), prev_ts=prev))
            prev = chunk[-1].ts
        if ts_list:
            top = max(top, ts_list[-1])
    # Final heartbeats push every PartitionTime past the last op so the
    # entire timeline becomes stable and drains.
    for p in range(n_parts):
        feeder.send(targets[p], PartitionHeartbeat(p, top + 1))
    env.run(until=1.0)
    return [op.uid for op in sink.ops]


timelines = st.lists(
    st.lists(st.integers(min_value=1, max_value=500),
             min_size=0, max_size=24),
    min_size=4, max_size=8,
).map(lambda per_part: [sorted(set(ts)) for ts in per_part])


def run_replicated_stabilization(ts_by_partition, n_shards, n_replicas,
                                 crash_leader=False, batch_size=3):
    """Feed fixed timelines into an Alg. 4 × K deployment; return the
    deduplicated delivered stable order (uids) plus the sink."""
    env = Environment(seed=42)
    Network(env, ConstantLatency(0.0001))
    n_parts = len(ts_by_partition)
    config = EunomiaConfig(stabilization_interval=0.004,
                           n_shards=n_shards, n_replicas=n_replicas,
                           fault_tolerant=True,
                           replica_alive_interval=0.03,
                           replica_suspect_timeout=0.1)
    config.validate()
    stack = build_stabilizer_stack(env, 0, n_parts, config, Calibration())
    sink = DedupSink(env)
    for propagator in stack.propagators():
        propagator.add_destination(sink)
    for proc in stack.processes():
        proc.start()

    feeder = AckFeeder(env, "feeder")

    def feed(p, chunk, prev):
        batch = AddOpBatch(p, tuple(chunk), prev_ts=prev)
        for target in stack.uplink_targets(p):
            feeder.send(target, batch)

    # Chunk every partition's timeline, then feed round-robin across
    # partitions so the first half advances *every* shard's stable floor
    # (the crashing leader then ships a real prefix before it dies).
    per_part = []        # per partition: [(chunk, prev_ts), ...]
    top = 0
    for p, ts_list in enumerate(ts_by_partition):
        ops = [make_op(ts, p, seq=i + 1) for i, ts in enumerate(ts_list)]
        prev, entries = 0, []
        for i in range(0, len(ops), batch_size):
            chunk = ops[i:i + batch_size]
            entries.append((chunk, prev))
            prev = chunk[-1].ts
        per_part.append(entries)
        if ts_list:
            top = max(top, ts_list[-1])
    chunks = []          # (partition, chunk, prev_ts), round-robin order
    for round_i in range(max((len(e) for e in per_part), default=0)):
        for p, entries in enumerate(per_part):
            if round_i < len(entries):
                chunks.append((p, *entries[round_i]))
    half = len(chunks) // 2
    for p, chunk, prev in chunks[:half]:
        feed(p, chunk, prev)

    if crash_leader:
        # Let the initial leader ship part of the stream, then kill it —
        # the whole replica group (coordinator + K shards) when sharded,
        # the Alg. 4 replica when K=1.
        env.run(until=0.05)
        stack.crash_units()[0].crash()

    for p, chunk, prev in chunks[half:]:
        feed(p, chunk, prev)
    for p in range(n_parts):
        beat = PartitionHeartbeat(p, top + 1)
        for target in stack.uplink_targets(p):
            feeder.send(target, beat)
    # Past the suspicion timeout + several stabilization rounds.
    env.run(until=1.0)
    return [op.uid for op in sink.ops], sink, stack


class TestMergeDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(timelines=timelines, n_shards=st.sampled_from([2, 3, 4]))
    def test_sharded_output_identical_to_single_stabilizer(
            self, timelines, n_shards):
        """Property 1 + determinism: identical stable serialization for any
        K — the K-way merge re-creates the (ts, origin, seq) total order."""
        reference = run_stabilization(timelines, n_shards=1)
        assert run_stabilization(timelines, n_shards=n_shards) == reference

    def test_block_policy_also_matches(self):
        tls = [[10, 30, 50], [20, 40], [15, 35, 55], [25, 45]]
        reference = run_stabilization(tls, n_shards=1)
        env_out = run_stabilization(tls, n_shards=2)
        assert env_out == reference

    def test_laggard_shard_holds_back_global_stable_time(self):
        """An op above min(ShardStableTime) must wait at the coordinator."""
        env = Environment(seed=7)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(n_shards=2)
        coordinator = ShardCoordinator(env, "coord", 0, 2, config)
        sink = Sink(env)
        coordinator.add_destination(sink)
        feeder = Process(env, "feeder")
        feeder.send(coordinator, ShardStableBatch(0, 100, (make_op(80, 0),)))
        env.run(until=0.01)
        # shard 1 silent: min(ShardStableTime) == 0, nothing released
        assert sink.ops == []
        assert coordinator.stable_time == 0
        feeder.send(coordinator, ShardStableBatch(1, 90, (make_op(85, 1),)))
        env.run(until=0.02)
        # global StableTime = min(100, 90) = 90 releases both queued runs
        assert coordinator.stable_time == 90
        assert [op.ts for op in sink.ops] == [80, 85]

    def test_empty_announcements_advance_stable_time(self):
        env = Environment(seed=8)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(n_shards=2)
        coordinator = ShardCoordinator(env, "coord", 0, 2, config)
        sink = Sink(env)
        coordinator.add_destination(sink)
        feeder = Process(env, "feeder")
        feeder.send(coordinator, ShardStableBatch(0, 50, (make_op(42, 0),)))
        feeder.send(coordinator, ShardStableBatch(1, 40, ()))  # idle shard
        env.run(until=0.01)
        assert coordinator.stable_time == 40
        assert sink.ops == []          # 42 > 40 still unstable
        feeder.send(coordinator, ShardStableBatch(1, 60, ()))
        env.run(until=0.02)
        assert [op.ts for op in sink.ops] == [42]

    def test_shard_only_bounded_by_owned_partitions(self):
        """A shard's ShardStableTime ignores partitions it does not own."""
        env = Environment(seed=9)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(stabilization_interval=0.004, n_shards=2)
        shard = EunomiaShard(env, "shard0", 0, 4, config,
                             shard_id=0, owned=[0, 2])
        shard_sink = ShardSink(env)
        shard.set_coordinator(shard_sink)
        shard.start()
        feeder = Process(env, "feeder")
        feeder.send(shard, AddOpBatch(0, (make_op(10, 0),)))
        feeder.send(shard, AddOpBatch(2, (make_op(20, 2),)))
        env.run(until=0.05)
        # partitions 1 and 3 are silent but unowned — stability unaffected
        assert shard.announced == 10
        assert [op.ts for b in shard_sink.batches for op in b.ops] == [10]


# ----------------------------------------------------------------------
# Replicated sharding (Algorithm 4 × K): equivalence + failover
# ----------------------------------------------------------------------
class TestReplicatedSharding:
    @settings(max_examples=12, deadline=None)
    @given(timelines=timelines,
           shape=st.sampled_from([(2, 2), (4, 3), (1, 3)]))
    def test_replicated_output_identical_even_under_leader_crash(
            self, timelines, shape):
        """The K×R leader's deduplicated output is op-for-op identical to
        the K=1 single stabilizer and the unreplicated K-shard service —
        with the initial leader group crashed mid-run or left alone."""
        n_shards, n_replicas = shape
        reference = run_stabilization(timelines, n_shards=1)
        assert run_stabilization(timelines, n_shards=max(n_shards, 1)) \
            == reference
        healthy, sink, _ = run_replicated_stabilization(
            timelines, n_shards, n_replicas)
        assert healthy == reference
        crashed, sink, _ = run_replicated_stabilization(
            timelines, n_shards, n_replicas, crash_leader=True)
        assert crashed == reference

    def test_failover_resumes_with_survivor_leader(self):
        tls = [[10, 30, 50, 70, 90], [20, 40, 60, 80],
               [15, 35, 55, 75], [25, 45, 65, 85]]
        uids, sink, stack = run_replicated_stabilization(
            tls, n_shards=2, n_replicas=3, crash_leader=True)
        assert uids == run_stabilization(tls, n_shards=1)
        assert stack.groups[0].crashed
        survivors = [g for g in stack.groups if not g.crashed]
        assert [g.is_leader() for g in survivors] == [True, False]
        assert stack.leader() is stack.groups[1].coordinator

    def test_follower_shards_never_serialize(self):
        tls = [[10, 30], [20, 40]]
        _, _, stack = run_replicated_stabilization(tls, n_shards=2,
                                                   n_replicas=2)
        leader, follower = stack.groups
        assert leader.ops_stabilized == 4
        assert follower.ops_stabilized == 0
        assert all(s.announced == 0 for s in follower.shards)
        # ...but followers still pruned on gossip: nothing stable lingers.
        assert all(len(s.buffer) == 0 for s in follower.shards)

    def test_crashed_group_recovers_and_reclaims_leadership(self):
        """recover() must re-arm stab ticks + election (no zombie replica);
        the rejoined lowest-id group reclaims leadership, its stale
        re-ships dedup away, and the stream still matches K=1."""
        config = EunomiaConfig(n_shards=2, n_replicas=2, fault_tolerant=True,
                               replica_alive_interval=0.05,
                               replica_suspect_timeout=0.16)

        def collect(cfg, crash_recover):
            rig = build_eunomia_rig(4, config=cfg, seed=33)
            rig.sink.record = True
            if crash_recover:
                rig.env.loop.schedule_at(0.15, rig.groups[0].crash)
                rig.env.loop.schedule_at(0.45, rig.groups[0].recover)
            rig.run(0.8)
            for driver in rig.drivers:
                driver.stop()
            rig.env.run(until=rig.env.now + 0.8)
            return rig

        # Reference: the same FT config, no crash.  (A non-FT rig would
        # generate a different op count — FT uplinks pay transmit CPU per
        # replica, which slows the closed-loop drivers slightly.)
        reference = collect(config, False).sink.collected
        rig = collect(config, True)
        assert rig.groups[0].is_leader()       # lowest id reclaimed Ω
        assert not rig.groups[1].is_leader()
        assert rig.groups[0].coordinator.merge_rounds > 0
        seen, deduped = set(), []
        for uid in rig.sink.collected:         # Alg. 5 dedup, first copy wins
            if uid not in seen:
                seen.add(uid)
                deduped.append(uid)
        assert deduped == reference

    def test_prune_floor_capped_at_shipped_stable_time(self):
        """A leader shard's floor may outrun the released StableTime while
        its popped ops sit in the merge queues; follower shards must keep
        exactly those ops (they die with the leader otherwise)."""
        env = Environment(seed=13)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(n_shards=2, n_replicas=2, fault_tolerant=True)
        leader = ReplicatedShardCoordinator(env, "lead", 0, 2, config,
                                            replica_id=0)
        follower = ReplicatedShardCoordinator(env, "follow", 0, 2, config,
                                              replica_id=1)
        leader.set_peers([leader, follower])
        follower.set_peers([leader, follower])
        fshards = [EunomiaShard(env, f"f-shard{s}", 0, 2, config,
                                shard_id=s, owned=[s],
                                leader_gate=follower.is_leader)
                   for s in range(2)]
        follower.set_shards(fshards)
        sink = Sink(env)
        leader.add_destination(sink)
        # The follower's shard 0 holds ops at 40 and 80.
        fshards[0].buffer.add(40, 0, 1, make_op(40, 0, seq=1))
        fshards[0].buffer.add(80, 0, 2, make_op(80, 0, seq=2))
        feeder = Process(env, "feeder")
        # Leader shard 0 announces floor 100 (ops 40 + 80 popped), shard 1
        # only 50 (op 45): global StableTime 50 releases 40 and 45; op 80
        # stays queued at the leader, unshipped.
        feeder.send(leader, ShardStableBatch(
            0, 100, (make_op(40, 0, seq=1), make_op(80, 0, seq=2))))
        feeder.send(leader, ShardStableBatch(1, 50, (make_op(45, 1, seq=1),)))
        env.run(until=0.05)
        assert [op.ts for op in sink.ops] == [40, 45]
        # Gossip pruned the follower's ts=40 but kept the unshipped ts=80.
        assert len(fshards[0].buffer) == 1
        assert fshards[0].buffer.min_ts() == 80
        assert fshards[0].stable_time == 50
        assert follower.stable_time == 50


# ----------------------------------------------------------------------
# TreeRelay → shard routing
# ----------------------------------------------------------------------
class Upstream(Process):
    def __init__(self, env, name):
        super().__init__(env, name, site=0)
        self.combined = []

    def on_combined_batch(self, msg, src):
        self.combined.append(msg)


class TestRelayShardRouting:
    @pytest.fixture
    def routed_relay(self, env, net):
        relay = TreeRelay(env, "relay", 0, flush_interval=0.002)
        shard_a, shard_b = Upstream(env, "shardA"), Upstream(env, "shardB")
        relay.set_upstream([shard_a, shard_b])
        relay.set_routing({0: shard_a, 1: shard_a, 2: shard_b})
        relay.start()
        feeder = Process(env, "feeder")
        return env, relay, shard_a, shard_b, feeder

    def test_traffic_routed_to_owning_shard(self, routed_relay):
        env, relay, shard_a, shard_b, feeder = routed_relay
        feeder.send(relay, AddOpBatch(0, (make_op(1, 0),)))
        feeder.send(relay, AddOpBatch(2, (make_op(2, 2),)))
        feeder.send(relay, AddOpBatch(1, (make_op(3, 1),)))
        feeder.send(relay, PartitionHeartbeat(2, 99))
        env.run(until=0.01)
        assert len(shard_a.combined) == 1 and len(shard_b.combined) == 1
        a = shard_a.combined[0]
        assert [b.partition_index for b in a.batches] == [0, 1]
        assert a.heartbeats == ()
        b = shard_b.combined[0]
        assert [bt.partition_index for bt in b.batches] == [2]
        assert [hb.partition_index for hb in b.heartbeats] == [2]

    def test_per_partition_order_preserved_within_shard_window(
            self, routed_relay):
        env, relay, shard_a, _, feeder = routed_relay
        feeder.send(relay, AddOpBatch(0, (make_op(1, 0),)))
        feeder.send(relay, AddOpBatch(0, (make_op(2, 0),)))
        feeder.send(relay, AddOpBatch(1, (make_op(5, 1),)))
        env.run(until=0.01)
        batches = shard_a.combined[0].batches
        assert [b.ops[0].ts for b in batches] == [1, 2, 5]

    def test_shard_without_traffic_gets_no_window(self, routed_relay):
        env, relay, shard_a, shard_b, feeder = routed_relay
        feeder.send(relay, AddOpBatch(0, (make_op(1, 0),)))
        env.run(until=0.01)
        assert len(shard_a.combined) == 1
        assert shard_b.combined == []

    def test_unrouted_partition_fails_loudly(self, routed_relay):
        env, relay, _, _, feeder = routed_relay
        feeder.send(relay, AddOpBatch(7, (make_op(1, 7),)))
        with pytest.raises(KeyError):
            env.run(until=0.01)

    def test_broadcast_preserved_without_routing(self, env, net):
        relay = TreeRelay(env, "relay", 0, flush_interval=0.002)
        up = [Upstream(env, "u0"), Upstream(env, "u1")]
        relay.set_upstream(up)
        relay.start()
        feeder = Process(env, "feeder")
        feeder.send(relay, AddOpBatch(0, (make_op(1, 0),)))
        env.run(until=0.01)
        assert len(up[0].combined) == len(up[1].combined) == 1


# ----------------------------------------------------------------------
# End-to-end: rigs and geo deployments
# ----------------------------------------------------------------------
class TestShardedEndToEnd:
    @staticmethod
    def _drained_rig_sequence(n_shards, use_tree=False):
        config = EunomiaConfig(n_shards=n_shards,
                               use_propagation_tree=use_tree, tree_fanout=4)
        rig = build_eunomia_rig(8, config=config, seed=21)
        rig.sink.record = True
        rig.run(0.4)
        for driver in rig.drivers:
            driver.stop()
        rig.env.run(until=rig.env.now + 0.6)   # drain: heartbeats stabilize all
        return rig.sink.collected

    def test_rig_sequence_identical_across_shard_counts(self):
        """End-to-end determinism: same seed, same ops, K ∈ {1, 2, 4}."""
        reference = self._drained_rig_sequence(1)
        assert reference, "K=1 emitted nothing"
        for k in (2, 4):
            assert self._drained_rig_sequence(k) == reference, \
                f"K={k} diverged from K=1"

    def test_rig_sequence_identical_with_relay_routing(self):
        """Determinism also holds with the §5 tree routing to shards."""
        reference = self._drained_rig_sequence(1)
        assert self._drained_rig_sequence(4, use_tree=True) == reference

    def test_sharded_geo_system_converges_and_is_causal(self):
        config = EunomiaConfig(n_shards=2)
        history = SessionHistory()
        system = build_eunomia_system(
            GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=3,
                          seed=5),
            WorkloadSpec(read_ratio=0.8, n_keys=60),
            config=config, history=history)
        system.run(3.0)
        system.quiesce(3.0)
        assert system.converged()
        assert CausalChecker(history).check() == []
        dc = system.datacenters[0]
        assert len(dc.shards) == 2
        assert dc.coordinator is not None
        assert dc.coordinator.ops_stabilized > 0
        assert dc.leader() is dc.coordinator

    def test_sharded_geo_with_propagation_tree_converges(self):
        config = EunomiaConfig(n_shards=2, use_propagation_tree=True,
                               tree_fanout=2)
        system = build_eunomia_system(
            GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=3,
                          seed=6),
            WorkloadSpec(read_ratio=0.8, n_keys=60), config=config)
        system.run(3.0)
        system.quiesce(3.0)
        assert system.converged()
        assert len(system.datacenters[0].relays) == 2

    def test_ft_sharded_geo_system_converges_and_is_causal(self):
        """Acceptance shape: n_shards=4 × n_replicas=3 runs end-to-end."""
        config = EunomiaConfig(n_shards=4, n_replicas=3, fault_tolerant=True)
        history = SessionHistory()
        system = build_eunomia_system(
            GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=3,
                          seed=15),
            WorkloadSpec(read_ratio=0.8, n_keys=60),
            config=config, history=history)
        system.run(3.0)
        system.quiesce(3.0)
        assert system.converged()
        assert CausalChecker(history).check() == []
        dc = system.datacenters[0]
        assert len(dc.replica_groups) == 3
        assert len(dc.shards) == 12 and len(dc.coordinators) == 3
        assert dc.leader() is dc.replica_groups[0].coordinator
        assert dc.replica_groups[0].ops_stabilized > 0
        # Followers never serialized, but their shards were pruned.
        for group in dc.replica_groups[1:]:
            assert group.ops_stabilized == 0

    def test_ft_sharded_geo_leader_crash_loses_and_duplicates_nothing(self):
        """Kill dc0's leading replica group mid-run: the survivors take
        over and every datacenter still converges causally — no stable op
        is lost, and the re-shipped overlap is deduplicated remotely."""
        config = EunomiaConfig(n_shards=2, n_replicas=3, fault_tolerant=True,
                               replica_alive_interval=0.25,
                               replica_suspect_timeout=0.8)
        history = SessionHistory()
        system = build_eunomia_system(
            GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=3,
                          seed=16),
            WorkloadSpec(read_ratio=0.8, n_keys=60),
            config=config, history=history)
        dc0 = system.datacenters[0]
        system.env.loop.schedule_at(1.5, dc0.replica_groups[0].crash)
        system.run(4.0)
        system.quiesce(4.0)
        assert dc0.replica_groups[0].crashed
        assert system.converged()
        assert CausalChecker(history).check() == []
        assert dc0.leader() is dc0.replica_groups[1].coordinator
        assert dc0.replica_groups[1].ops_stabilized > 0
        # Exact accounting at every remote receiver: each op committed in
        # a remote DC applied exactly once (a duplicate apply would push
        # the count over, a lost op would leave it under).
        for dc in system.datacenters:
            expected = sum(p.local_updates
                           for other in system.datacenters
                           if other is not dc
                           for p in other.partitions)
            assert dc.receiver.applied == expected

    def test_gossip_loss_path_fires_dedup_end_to_end(self):
        """ShardStableVector gossip under intra-site message loss.

        The per-origin dedup at remote receivers is the safety net for
        prune gossip that never arrived: a follower that missed the
        leader's last vectors still holds (and, on failover, re-ships)
        ops the dead leader already delivered.  Dropping 80% of the
        coordinator↔coordinator traffic (gossip *and* Ω heartbeats, so
        spurious flaps can double-ship too) and then crashing the leader
        makes that path actually fire in an end-to-end run: duplicates
        reach the sink, and the deduplicated stream is still op-for-op
        the loss-free, crash-free serialization.
        """
        config = EunomiaConfig(n_shards=2, n_replicas=3, fault_tolerant=True,
                               replica_alive_interval=0.05,
                               replica_suspect_timeout=0.3)

        def collect(inject):
            rig = build_eunomia_rig(4, config=config, seed=91)
            rig.sink.record = True
            if inject:
                net = rig.env.network
                coordinators = [g.coordinator for g in rig.groups]
                for a in coordinators:
                    for b in coordinators:
                        if a is not b:
                            net.set_link_loss(a, b, 0.8)
                rig.env.loop.schedule_at(0.4, rig.groups[0].crash)
            rig.run(0.9)
            for driver in rig.drivers:
                driver.stop()
            rig.env.run(until=rig.env.now + 0.8)
            return rig

        reference = collect(False).sink.collected
        rig = collect(True)
        raw = rig.sink.collected
        seen, deduped = set(), []
        for uid in raw:
            if uid not in seen:
                seen.add(uid)
                deduped.append(uid)
        # The loss made followers miss prune floors, so the failover
        # re-shipped a window the gossip would have pruned — the dedup
        # path demonstrably fired...
        assert len(raw) > len(deduped)
        # ...and absorbed it: same serialization as the healthy run.
        assert deduped == reference

    def test_single_shard_config_uses_plain_service(self):
        system = build_eunomia_system(
            GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=1,
                          seed=3),
            WorkloadSpec(), config=EunomiaConfig(n_shards=1))
        dc = system.datacenters[0]
        assert dc.shards == [] and dc.coordinator is None
        assert isinstance(dc.eunomia_replicas[0], EunomiaService)
