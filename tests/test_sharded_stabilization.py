"""Tests for sharded Eunomia stabilization (shards + merging coordinator).

The load-bearing property: for the same input timelines, the K-shard
deployment must emit *op-for-op the same stable serialization* as the K=1
single stabilizer — sharding is an implementation strategy, not a semantic
change (Properties 1–2 preserved through the K-way merge).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import CausalChecker, SessionHistory
from repro.core import (
    EunomiaConfig,
    EunomiaService,
    EunomiaShard,
    ShardCoordinator,
    ShardMap,
    TreeRelay,
)
from repro.core.messages import AddOpBatch, PartitionHeartbeat, ShardStableBatch
from repro.geo.system import GeoSystemSpec, build_eunomia_system
from repro.harness.loadgen import build_eunomia_rig
from repro.kvstore.types import Update
from repro.sim import ConstantLatency, Environment, Network, Process
from repro.workload import WorkloadSpec


def make_op(ts, partition=0, seq=None):
    return Update(key=f"k{ts}", value=None, origin_dc=0,
                  partition_index=partition,
                  seq=seq if seq is not None else ts,
                  ts=ts, vts=(ts,), commit_time=0.0)


class Sink(Process):
    def __init__(self, env):
        super().__init__(env, "sink", site=1)
        self.batches = []

    def on_remote_stable_batch(self, msg, src):
        self.batches.append(msg)

    @property
    def ops(self):
        return [op for batch in self.batches for op in batch.ops]


class ShardSink(Process):
    """Collects ShardStableBatch (stands in for the coordinator)."""

    def __init__(self, env):
        super().__init__(env, "shard-sink", site=0)
        self.batches = []

    def on_shard_stable_batch(self, msg, src):
        self.batches.append(msg)


# ----------------------------------------------------------------------
# ShardMap / config validation
# ----------------------------------------------------------------------
class TestShardAssignment:
    def test_stride_policy_round_robins(self):
        m = ShardMap(8, 4, "stride")
        assert [m.shard_of(p) for p in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert m.owned_by(1) == [1, 5]

    def test_block_policy_is_contiguous(self):
        m = ShardMap(8, 3, "block")
        owned = [m.owned_by(s) for s in range(3)]
        assert owned == [[0, 1, 2], [3, 4, 5], [6, 7]]

    def test_every_shard_owns_something(self):
        for n_parts in (2, 3, 8, 13):
            for k in range(1, n_parts + 1):
                for policy in ("stride", "block"):
                    m = ShardMap(n_parts, k, policy)
                    assert all(m.owned_by(s) for s in range(k))
                    assert sorted(sum((m.owned_by(s) for s in range(k)), [])) \
                        == list(range(n_parts))

    def test_more_shards_than_partitions_rejected(self):
        with pytest.raises(ValueError, match="some shards would track no"):
            ShardMap(2, 4)

    def test_zero_shards_rejected_by_config(self):
        with pytest.raises(ValueError, match="at least one Eunomia shard"):
            EunomiaConfig(n_shards=0).validate()

    def test_sharding_with_fault_tolerance_rejected(self):
        with pytest.raises(ValueError, match="sharded stabilization"):
            EunomiaConfig(n_shards=2, fault_tolerant=True,
                          n_replicas=2).validate()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown shard policy"):
            EunomiaConfig(n_shards=2, shard_policy="hash").validate()

    def test_oversharded_deployment_rejected_at_build(self):
        with pytest.raises(ValueError, match="some shards would track no"):
            build_eunomia_system(
                GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=1),
                WorkloadSpec(), config=EunomiaConfig(n_shards=4))


# ----------------------------------------------------------------------
# Determinism: K-shard output == K=1 output, op for op
# ----------------------------------------------------------------------
def run_stabilization(ts_by_partition, n_shards, batch_size=3):
    """Feed fixed per-partition timelines; return the emitted stable order."""
    env = Environment(seed=42)
    Network(env, ConstantLatency(0.0001))
    n_parts = len(ts_by_partition)
    config = EunomiaConfig(stabilization_interval=0.004, n_shards=n_shards)
    sink = Sink(env)

    if n_shards == 1:
        service = EunomiaService(env, "eunomia", 0, n_parts, config)
        service.add_destination(sink)
        service.start()
        targets = {p: service for p in range(n_parts)}
    else:
        shard_map = ShardMap(n_parts, n_shards, config.shard_policy)
        coordinator = ShardCoordinator(env, "coord", 0, n_shards, config)
        coordinator.add_destination(sink)
        targets = {}
        for sid in range(n_shards):
            shard = EunomiaShard(env, f"shard{sid}", 0, n_parts, config,
                                 shard_id=sid, owned=shard_map.owned_by(sid))
            shard.set_coordinator(coordinator)
            shard.start()
            for p in shard.owned:
                targets[p] = shard
        coordinator.start()

    feeder = Process(env, "feeder")
    top = 0
    for p, ts_list in enumerate(ts_by_partition):
        ops = [make_op(ts, p, seq=i + 1) for i, ts in enumerate(ts_list)]
        prev = 0
        for i in range(0, len(ops), batch_size):
            chunk = ops[i:i + batch_size]
            feeder.send(targets[p], AddOpBatch(p, tuple(chunk), prev_ts=prev))
            prev = chunk[-1].ts
        if ts_list:
            top = max(top, ts_list[-1])
    # Final heartbeats push every PartitionTime past the last op so the
    # entire timeline becomes stable and drains.
    for p in range(n_parts):
        feeder.send(targets[p], PartitionHeartbeat(p, top + 1))
    env.run(until=1.0)
    return [op.uid for op in sink.ops]


timelines = st.lists(
    st.lists(st.integers(min_value=1, max_value=500),
             min_size=0, max_size=24),
    min_size=4, max_size=8,
).map(lambda per_part: [sorted(set(ts)) for ts in per_part])


class TestMergeDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(timelines=timelines, n_shards=st.sampled_from([2, 3, 4]))
    def test_sharded_output_identical_to_single_stabilizer(
            self, timelines, n_shards):
        """Property 1 + determinism: identical stable serialization for any
        K — the K-way merge re-creates the (ts, origin, seq) total order."""
        reference = run_stabilization(timelines, n_shards=1)
        assert run_stabilization(timelines, n_shards=n_shards) == reference

    def test_block_policy_also_matches(self):
        tls = [[10, 30, 50], [20, 40], [15, 35, 55], [25, 45]]
        reference = run_stabilization(tls, n_shards=1)
        env_out = run_stabilization(tls, n_shards=2)
        assert env_out == reference

    def test_laggard_shard_holds_back_global_stable_time(self):
        """An op above min(ShardStableTime) must wait at the coordinator."""
        env = Environment(seed=7)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(n_shards=2)
        coordinator = ShardCoordinator(env, "coord", 0, 2, config)
        sink = Sink(env)
        coordinator.add_destination(sink)
        feeder = Process(env, "feeder")
        feeder.send(coordinator, ShardStableBatch(0, 100, (make_op(80, 0),)))
        env.run(until=0.01)
        # shard 1 silent: min(ShardStableTime) == 0, nothing released
        assert sink.ops == []
        assert coordinator.stable_time == 0
        feeder.send(coordinator, ShardStableBatch(1, 90, (make_op(85, 1),)))
        env.run(until=0.02)
        # global StableTime = min(100, 90) = 90 releases both queued runs
        assert coordinator.stable_time == 90
        assert [op.ts for op in sink.ops] == [80, 85]

    def test_empty_announcements_advance_stable_time(self):
        env = Environment(seed=8)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(n_shards=2)
        coordinator = ShardCoordinator(env, "coord", 0, 2, config)
        sink = Sink(env)
        coordinator.add_destination(sink)
        feeder = Process(env, "feeder")
        feeder.send(coordinator, ShardStableBatch(0, 50, (make_op(42, 0),)))
        feeder.send(coordinator, ShardStableBatch(1, 40, ()))  # idle shard
        env.run(until=0.01)
        assert coordinator.stable_time == 40
        assert sink.ops == []          # 42 > 40 still unstable
        feeder.send(coordinator, ShardStableBatch(1, 60, ()))
        env.run(until=0.02)
        assert [op.ts for op in sink.ops] == [42]

    def test_shard_only_bounded_by_owned_partitions(self):
        """A shard's ShardStableTime ignores partitions it does not own."""
        env = Environment(seed=9)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(stabilization_interval=0.004, n_shards=2)
        shard = EunomiaShard(env, "shard0", 0, 4, config,
                             shard_id=0, owned=[0, 2])
        shard_sink = ShardSink(env)
        shard.set_coordinator(shard_sink)
        shard.start()
        feeder = Process(env, "feeder")
        feeder.send(shard, AddOpBatch(0, (make_op(10, 0),)))
        feeder.send(shard, AddOpBatch(2, (make_op(20, 2),)))
        env.run(until=0.05)
        # partitions 1 and 3 are silent but unowned — stability unaffected
        assert shard.announced == 10
        assert [op.ts for b in shard_sink.batches for op in b.ops] == [10]


# ----------------------------------------------------------------------
# TreeRelay → shard routing
# ----------------------------------------------------------------------
class Upstream(Process):
    def __init__(self, env, name):
        super().__init__(env, name, site=0)
        self.combined = []

    def on_combined_batch(self, msg, src):
        self.combined.append(msg)


class TestRelayShardRouting:
    @pytest.fixture
    def routed_relay(self, env, net):
        relay = TreeRelay(env, "relay", 0, flush_interval=0.002)
        shard_a, shard_b = Upstream(env, "shardA"), Upstream(env, "shardB")
        relay.set_upstream([shard_a, shard_b])
        relay.set_routing({0: shard_a, 1: shard_a, 2: shard_b})
        relay.start()
        feeder = Process(env, "feeder")
        return env, relay, shard_a, shard_b, feeder

    def test_traffic_routed_to_owning_shard(self, routed_relay):
        env, relay, shard_a, shard_b, feeder = routed_relay
        feeder.send(relay, AddOpBatch(0, (make_op(1, 0),)))
        feeder.send(relay, AddOpBatch(2, (make_op(2, 2),)))
        feeder.send(relay, AddOpBatch(1, (make_op(3, 1),)))
        feeder.send(relay, PartitionHeartbeat(2, 99))
        env.run(until=0.01)
        assert len(shard_a.combined) == 1 and len(shard_b.combined) == 1
        a = shard_a.combined[0]
        assert [b.partition_index for b in a.batches] == [0, 1]
        assert a.heartbeats == ()
        b = shard_b.combined[0]
        assert [bt.partition_index for bt in b.batches] == [2]
        assert [hb.partition_index for hb in b.heartbeats] == [2]

    def test_per_partition_order_preserved_within_shard_window(
            self, routed_relay):
        env, relay, shard_a, _, feeder = routed_relay
        feeder.send(relay, AddOpBatch(0, (make_op(1, 0),)))
        feeder.send(relay, AddOpBatch(0, (make_op(2, 0),)))
        feeder.send(relay, AddOpBatch(1, (make_op(5, 1),)))
        env.run(until=0.01)
        batches = shard_a.combined[0].batches
        assert [b.ops[0].ts for b in batches] == [1, 2, 5]

    def test_shard_without_traffic_gets_no_window(self, routed_relay):
        env, relay, shard_a, shard_b, feeder = routed_relay
        feeder.send(relay, AddOpBatch(0, (make_op(1, 0),)))
        env.run(until=0.01)
        assert len(shard_a.combined) == 1
        assert shard_b.combined == []

    def test_unrouted_partition_fails_loudly(self, routed_relay):
        env, relay, _, _, feeder = routed_relay
        feeder.send(relay, AddOpBatch(7, (make_op(1, 7),)))
        with pytest.raises(KeyError):
            env.run(until=0.01)

    def test_broadcast_preserved_without_routing(self, env, net):
        relay = TreeRelay(env, "relay", 0, flush_interval=0.002)
        up = [Upstream(env, "u0"), Upstream(env, "u1")]
        relay.set_upstream(up)
        relay.start()
        feeder = Process(env, "feeder")
        feeder.send(relay, AddOpBatch(0, (make_op(1, 0),)))
        env.run(until=0.01)
        assert len(up[0].combined) == len(up[1].combined) == 1


# ----------------------------------------------------------------------
# End-to-end: rigs and geo deployments
# ----------------------------------------------------------------------
class TestShardedEndToEnd:
    @staticmethod
    def _drained_rig_sequence(n_shards, use_tree=False):
        config = EunomiaConfig(n_shards=n_shards,
                               use_propagation_tree=use_tree, tree_fanout=4)
        rig = build_eunomia_rig(8, config=config, seed=21)
        rig.sink.record = True
        rig.run(0.4)
        for driver in rig.drivers:
            driver.stop()
        rig.env.run(until=rig.env.now + 0.6)   # drain: heartbeats stabilize all
        return rig.sink.collected

    def test_rig_sequence_identical_across_shard_counts(self):
        """End-to-end determinism: same seed, same ops, K ∈ {1, 2, 4}."""
        reference = self._drained_rig_sequence(1)
        assert reference, "K=1 emitted nothing"
        for k in (2, 4):
            assert self._drained_rig_sequence(k) == reference, \
                f"K={k} diverged from K=1"

    def test_rig_sequence_identical_with_relay_routing(self):
        """Determinism also holds with the §5 tree routing to shards."""
        reference = self._drained_rig_sequence(1)
        assert self._drained_rig_sequence(4, use_tree=True) == reference

    def test_sharded_geo_system_converges_and_is_causal(self):
        config = EunomiaConfig(n_shards=2)
        history = SessionHistory()
        system = build_eunomia_system(
            GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=3,
                          seed=5),
            WorkloadSpec(read_ratio=0.8, n_keys=60),
            config=config, history=history)
        system.run(3.0)
        system.quiesce(3.0)
        assert system.converged()
        assert CausalChecker(history).check() == []
        dc = system.datacenters[0]
        assert len(dc.shards) == 2
        assert dc.coordinator is not None
        assert dc.coordinator.ops_stabilized > 0
        assert dc.leader() is dc.coordinator

    def test_sharded_geo_with_propagation_tree_converges(self):
        config = EunomiaConfig(n_shards=2, use_propagation_tree=True,
                               tree_fanout=2)
        system = build_eunomia_system(
            GeoSystemSpec(n_dcs=3, partitions_per_dc=4, clients_per_dc=3,
                          seed=6),
            WorkloadSpec(read_ratio=0.8, n_keys=60), config=config)
        system.run(3.0)
        system.quiesce(3.0)
        assert system.converged()
        assert len(system.datacenters[0].relays) == 2

    def test_single_shard_config_uses_plain_service(self):
        system = build_eunomia_system(
            GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=1,
                          seed=3),
            WorkloadSpec(), config=EunomiaConfig(n_shards=1))
        dc = system.datacenters[0]
        assert dc.shards == [] and dc.coordinator is None
        assert isinstance(dc.eunomia_replicas[0], EunomiaService)
