"""Cross-protocol failure scenarios over the shared spine.

Before the single-spine refactor the baselines deployed over their own
frame, cut off from :class:`repro.sim.failure.FailureSchedule` — a
baseline under a crash schedule was unbuildable.  Now any protocol's
processes are schedulable through ``system.failures()``; these tests
crash and recover baseline *partitions* mid-run and assert the stores
keep their promises:

* **eventual** — a crash-stop partition loses the remote updates shipped
  while it was down (no recovery log), but the protocol promises nothing
  about them; sessions never observe a violation.
* **GentleRain** — the crashed partition's stale report freezes the
  datacenter-wide GST (the min spans *all* partitions), stalling remote
  visibility; on recovery its periodic machinery re-arms, the GST thaws
  past the freeze point, and every recorded session still satisfies the
  causal session guarantees.

The chain-replicated sequencer test exercises the other new cross-
protocol axis: ``chain_length`` builds the §7.1 fault-tolerant sequencer
as a full end-to-end deployment on the same spine.
"""

import pytest

from repro.baselines import build_system
from repro.checker import CausalChecker, SessionHistory
from repro.geo.system import GeoSystemSpec
from repro.workload import WorkloadSpec

SPEC = GeoSystemSpec(n_dcs=3, partitions_per_dc=2, clients_per_dc=3, seed=23)
WL = WorkloadSpec(read_ratio=0.75, n_keys=48)

CRASH_AT, RECOVER_AT = 0.8, 1.6


def run_with_partition_crash(protocol, **kwargs):
    history = SessionHistory()
    system = build_system(protocol, SPEC, WL, history=history, **kwargs)
    # partition 1 of dc0: not the GST aggregator (index 0), so the
    # datacenter keeps aggregating — from a stale report — while it's down
    victim = system.datacenters[0].partitions[1]
    schedule = system.failures()
    schedule.crash_at(CRASH_AT, victim)
    schedule.recover_at(RECOVER_AT, victim)
    probes = {}
    schedule.at(RECOVER_AT - 0.01,
                lambda: probes.__setitem__("summary", getattr(
                    victim, "summary", None)),
                "probe summary before recovery")
    system.run(3.5)
    system.quiesce(2.5)
    return system, history, victim, probes


def test_eventual_survives_partition_crash():
    system, history, victim, _ = run_with_partition_crash("eventual")
    assert [(t, label) for t, label in system.failures().log
            if not label.startswith("probe")] == [
        (CRASH_AT, f"crash {victim.name}"),
        (RECOVER_AT, f"recover {victim.name}"),
    ]
    assert not victim.crashed
    assert system.total_throughput() > 0
    # sessions on the surviving partitions kept completing operations
    # throughout the outage and after recovery
    assert any(r.time > RECOVER_AT for c in history.clients()
               for r in history.session(c))
    # eventual exposes no causal metadata, so there is nothing to violate —
    # but the recorded histories must still be internally consistent
    assert CausalChecker(history).check() == []
    assert CausalChecker(history).check_write_read_pairs() == []


def test_gentlerain_survives_partition_crash():
    system, history, victim, probes = run_with_partition_crash("gentlerain")
    assert not victim.crashed
    assert system.total_throughput() > 0
    checker = CausalChecker(history)
    assert checker.check() == []
    assert checker.check_write_read_pairs() == []
    # the victim resumed stabilization: its GST advanced past the value it
    # held when recovery fired (periodics re-armed by GstPartition.recover)
    assert victim.summary > probes["summary"]
    # and remote updates deferred behind the frozen GST did drain
    assert victim.pending_count() == 0


def test_gentlerain_gst_stall_is_bounded_by_report_timeout():
    """The datacenter-wide min cannot advance past a dead partition's last
    report — but only until the aggregator's freshness gate expires that
    report (``aggregator_timeout``, default 10 × gst_interval = 50 ms).
    The unbounded freeze used to be GentleRain's failure mode; now the
    stall is bounded and the GST resumes while the partition is still down."""
    system = build_system("gentlerain", SPEC, WL)
    victim = system.datacenters[0].partitions[1]
    sibling = system.datacenters[0].partitions[0]
    samples = {}
    schedule = system.failures()
    schedule.crash_at(CRASH_AT, victim)
    # Within the freshness window the dead partition's stale report pins
    # the min: the GST is genuinely frozen.
    schedule.at(CRASH_AT + 0.015,
                lambda: samples.__setitem__("early", sibling.summary),
                "sample frozen GST")
    schedule.at(CRASH_AT + 0.045,
                lambda: samples.__setitem__("pinned", sibling.summary),
                "sample GST still frozen")
    # Past the window the aggregator drops the stale report and the GST
    # advances again — with the victim still down.
    schedule.at(CRASH_AT + 0.4,
                lambda: samples.__setitem__("thawed", sibling.summary),
                "sample GST past the stall")
    schedule.recover_at(RECOVER_AT + 0.5, victim)
    system.run(3.5)
    assert samples["pinned"] == samples["early"]        # frozen inside window
    assert samples["thawed"] > samples["pinned"]        # bounded stall
    assert sibling.summary > samples["thawed"]          # advancing after rejoin


def test_failure_actions_added_mid_run_still_fire():
    """system.failures() arms at start; actions added *after* that (or
    between run() windows) must schedule immediately, not vanish."""
    system = build_system("eventual", SPEC, WL)
    system.run(0.5)
    victim = system.datacenters[0].partitions[1]
    system.failures().crash_at(1.0, victim)
    system.run(1.0)
    assert victim.crashed
    system.failures().recover_at(system.env.now + 0.2, victim)
    system.run(0.5)
    assert not victim.crashed
    assert [label for _, label in system.failures().log] == [
        f"crash {victim.name}", f"recover {victim.name}"]


@pytest.mark.parametrize("chain_length", [1, 3])
def test_chain_sequencer_end_to_end(chain_length):
    """sseq × chain_length: the §7.1 chain-replicated sequencer as a full
    deployment — converges and passes the causal checker like plain sseq."""
    history = SessionHistory()
    system = build_system("sseq", SPEC, WL, history=history,
                          chain_length=chain_length)
    system.run(2.0)
    system.quiesce(2.5)
    assert system.converged()
    assert system.total_throughput() > 0
    checker = CausalChecker(history)
    assert checker.check() == []
    assert checker.check_write_read_pairs() == []
    extras = system.datacenters[0].extras
    assert len(extras) == chain_length
    if chain_length > 1:
        # every node logged every assignment (the replication invariant)
        head, tail = extras[0], extras[-1]
        assert head.is_head and tail.is_tail
        assert len(head.log) == len(tail.log) > 0
