"""Fault-model parity of the batched network entry points.

``Network.send_many`` and ``Network.multicast`` promise to be semantically
identical to per-message ``send`` — including under every injected fault:
link loss must consume the network RNG draw-for-draw, disconnected links
must drop whole batches, and gray-link extra delay must stretch each
message identically.  These tests run the same traffic through the
per-message and the batched paths in twin environments (same seed) and
require bit-identical delivery logs and counters.
"""

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import ConstantLatency, Environment, Network, Process
from repro.sim.latency import JitteredLatency


@dataclass(slots=True)
class Ping:
    seq: int
    size_bytes: int = 8


class Recorder(Process):
    def __init__(self, env, name):
        super().__init__(env, name)
        self.seen: list[tuple[float, int]] = []

    def on_ping(self, msg: Ping, src: Process) -> None:
        self.seen.append((self.now, msg.seq))


def _twin(seed=7, jitter=False):
    env = Environment(seed=seed)
    latency = (JitteredLatency(base_s=0.001, jitter_s=0.0004)
               if jitter else ConstantLatency(0.001))
    net = Network(env, latency)
    a, b = Recorder(env, "a"), Recorder(env, "b")
    return env, net, a, b


def _run_traffic(batched: bool, faults, batches, seed=7, jitter=False):
    """Replay (fault-setup, traffic) through send or send_many."""
    env, net, a, b = _twin(seed, jitter)
    faults(net, a, b)
    seq = 0
    for size in batches:
        msgs = [Ping(seq + i) for i in range(size)]
        seq += size
        if batched:
            net.send_many(a, b, msgs)
        else:
            for m in msgs:
                net.send(a, b, m)
    env.run(until=1.0)
    return (b.seen, net.messages_sent, net.messages_dropped,
            net.messages_attempted, net.bytes_sent)


def assert_parity(faults, batches, seed=7, jitter=False):
    solo = _run_traffic(False, faults, batches, seed, jitter)
    many = _run_traffic(True, faults, batches, seed, jitter)
    assert solo == many


def test_send_many_honors_link_loss():
    assert_parity(lambda net, a, b: net.set_link_loss(a, b, 0.35),
                  batches=[1, 4, 9, 2], jitter=True)


def test_send_many_honors_disconnect():
    assert_parity(lambda net, a, b: net.disconnect(a, b),
                  batches=[3, 5])


def test_send_many_honors_extra_delay():
    assert_parity(lambda net, a, b: net.set_link_extra_delay(a, b, 0.004),
                  batches=[2, 6, 1], jitter=True)


def test_send_many_combined_faults():
    def faults(net, a, b):
        net.set_link_loss(a, b, 0.2)
        net.set_link_extra_delay(a, b, 0.002)

    assert_parity(faults, batches=[8, 8, 8], jitter=True)


def test_multicast_honors_faults_per_destination():
    """multicast = send per destination, including per-link fault state."""
    def run(use_multicast):
        env = Environment(seed=11)
        net = Network(env, JitteredLatency(base_s=0.001, jitter_s=0.0003))
        src = Recorder(env, "src")
        dsts = [Recorder(env, f"d{i}") for i in range(3)]
        net.set_link_loss(src, dsts[0], 0.5)
        net.disconnect(src, dsts[1])
        net.set_link_extra_delay(src, dsts[2], 0.003)
        for i in range(10):
            if use_multicast:
                net.multicast(src, dsts, Ping(i))
            else:
                for d in dsts:
                    net.send(src, d, Ping(i))
        env.run(until=1.0)
        return [d.seen for d in dsts], net.messages_dropped

    assert run(True) == run(False)


@settings(max_examples=40, deadline=None)
@given(
    plan=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),     # batch size
            st.sampled_from(["none", "loss", "cut", "heal", "gray",
                             "clear_gray", "crash_dst",
                             "recover_dst"]),          # fault toggle first
        ),
        min_size=1, max_size=12),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_interleaved_faults_property(plan, seed):
    """Arbitrary interleavings of fault toggles and batches stay in
    lockstep between the per-message and the batched paths — including
    crash/recover of the destination, whose epoch guard must drop
    in-flight deliveries identically for merged and per-message events."""
    def run(batched):
        env, net, a, b = _twin(seed, jitter=True)
        seq = 0
        for size, toggle in plan:
            if toggle == "loss":
                net.set_link_loss(a, b, 0.4)
            elif toggle == "cut":
                net.disconnect(a, b)
            elif toggle == "heal":
                net.reconnect(a, b)
            elif toggle == "gray":
                net.set_link_extra_delay(a, b, 0.002)
            elif toggle == "clear_gray":
                net.set_link_extra_delay(a, b, 0.0)
            elif toggle == "crash_dst":
                if not b.crashed:
                    b.crash()
            elif toggle == "recover_dst":
                if b.crashed:
                    b.recover()
            msgs = [Ping(seq + i) for i in range(size)]
            seq += size
            if batched:
                net.send_many(a, b, msgs)
            else:
                for m in msgs:
                    net.send(a, b, m)
        env.run(until=1.0)
        return (b.seen, net.messages_sent, net.messages_dropped,
                net.messages_attempted)

    assert run(False) == run(True)
