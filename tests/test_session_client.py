"""Unit tests for the generic session client (Algorithm 1)."""

import pytest

from repro.checker import SessionHistory
from repro.core.client import SessionClient
from repro.core.messages import (
    ClientRead,
    ClientReadReply,
    ClientUpdate,
    ClientUpdateReply,
)
from repro.kvstore.ring import ConsistentHashRing
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network, Process


class ScriptedPartition(Process):
    """Replies to reads/updates with scripted vectors."""

    def __init__(self, env, name, read_vts=(0, 0), update_bump=10):
        super().__init__(env, name)
        self.read_vts = read_vts
        self.update_bump = update_bump
        self.reads = []
        self.updates = []

    def on_client_read(self, msg, src):
        self.reads.append(msg)
        self.send(src, ClientReadReply(msg.key, "value", self.read_vts,
                                       msg.request_id))

    def on_client_update(self, msg, src):
        self.updates.append(msg)
        vts = tuple(v + self.update_bump for v in msg.client_vts)
        self.send(src, ClientUpdateReply(vts, msg.request_id))


class FixedWorkload:
    """Deterministic op script, cycling."""

    def __init__(self, script):
        self.script = script
        self.i = 0

    def next(self, rng):
        op = self.script[self.i % len(self.script)]
        self.i += 1
        return op


def make_client(env, metrics, script, history=None, think=0.0):
    Network(env, ConstantLatency(0.0001))
    partition = ScriptedPartition(env, "p0")
    client = SessionClient(
        env, "c0", dc_id=0, n_entries=2, partitions=[partition],
        ring=ConsistentHashRing(1), workload=FixedWorkload(script),
        metrics=metrics, history=history, think_time=think,
    )
    return client, partition


def test_closed_loop_issues_serially(env, metrics):
    client, partition = make_client(
        env, metrics, [("read", 1, 0), ("update", 2, 10)])
    client.start()
    env.run(until=0.05)
    # strictly alternating read/update per the script
    assert len(partition.reads) == pytest.approx(len(partition.updates), abs=1)
    assert client.ops_done > 10


def test_session_clock_merges_read_vectors(env, metrics):
    client, partition = make_client(env, metrics, [("read", 1, 0)])
    partition.read_vts = (7, 3)
    client.start()
    env.run(until=0.002)
    assert client.vclock == (7, 3)


def test_update_piggybacks_session_clock(env, metrics):
    client, partition = make_client(
        env, metrics, [("read", 1, 0), ("update", 2, 10)])
    partition.read_vts = (5, 5)
    client.start()
    env.run(until=0.01)
    assert partition.updates[0].client_vts == (5, 5)


def test_latency_and_marks_recorded(env, metrics):
    client, _ = make_client(env, metrics, [("update", 1, 10)])
    client.start()
    env.run(until=0.01)
    assert metrics.sample_values("latency_ms:update")
    assert len(metrics.mark_times("ops")) == client.ops_done
    assert len(metrics.mark_times("ops:dc0")) == client.ops_done
    assert metrics.point_series("latency_ms:update:dc0")


def test_history_records_session_vts_before_merge(env, metrics):
    history = SessionHistory()
    client, partition = make_client(env, metrics, [("update", 1, 10)],
                                    history=history)
    client.start()
    env.run(until=0.005)
    records = history.session("c0")
    assert records[0].session_vts == (0, 0)      # clock before the op
    assert records[0].vts == (10, 10)            # what the system returned
    assert records[1].session_vts == (10, 10)


def test_stop_finishes_current_op_only(env, metrics):
    client, _ = make_client(env, metrics, [("read", 1, 0)])
    client.start()
    env.run(until=0.01)
    done = client.ops_done
    client.stop()
    env.run(until=0.05)
    assert client.ops_done <= done + 1


def test_think_time_slows_rate(env, metrics):
    fast, _ = make_client(env, metrics, [("read", 1, 0)])
    fast.start()
    env.run(until=0.2)
    env2 = Environment(seed=1)
    metrics2 = MetricsHub()
    slow, _ = make_client(env2, metrics2, [("read", 1, 0)], think=0.01)
    slow.start()
    env2.run(until=0.2)
    assert slow.ops_done < fast.ops_done / 2


def test_stale_replies_ignored(env, metrics):
    client, partition = make_client(env, metrics, [("read", 1, 0)])
    client.start()
    env.run(until=0.005)
    done = client.ops_done
    # a duplicate of an old reply must not double-complete
    client.deliver(ClientReadReply("k", "v", (0, 0), request_id=1), partition)
    env.run(until=0.006)
    assert client.ops_done <= done + 2  # no runaway double-loop
