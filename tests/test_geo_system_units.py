"""Unit tests for the geo facade, datacenter assembly, and spec handling."""

import pytest

from repro.calibration import Calibration
from repro.core import EunomiaConfig
from repro.geo.datacenter import Datacenter
from repro.geo.system import GeoSystem, GeoSystemSpec, build_eunomia_system
from repro.kvstore.ring import ConsistentHashRing
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network
from repro.sim.latency import RttMatrix
from repro.workload import WorkloadSpec


class TestSpec:
    def test_default_topology_is_papers(self):
        spec = GeoSystemSpec()
        assert spec.topology().rtt_ms[1][2] == 160.0

    def test_custom_topology_used(self):
        rtt = RttMatrix([[0, 10], [10, 0]])
        spec = GeoSystemSpec(n_dcs=2, rtt=rtt)
        assert spec.topology() is rtt

    def test_calibration_defaults(self):
        assert isinstance(GeoSystemSpec().calibration, Calibration)


class TestDatacenterAssembly:
    @pytest.fixture
    def dc_pair(self):
        env = Environment(seed=3)
        Network(env, ConstantLatency(0.0001))
        ring = ConsistentHashRing(2)
        config = EunomiaConfig()
        metrics = MetricsHub()
        dcs = [Datacenter(env, i, 2, 2, ring, config, metrics=metrics)
               for i in range(2)]
        return env, dcs

    def test_structure(self, dc_pair):
        _, dcs = dc_pair
        dc = dcs[0]
        assert len(dc.partitions) == 2
        assert len(dc.eunomia_replicas) == 1
        assert dc.receiver.dc_id == 0
        assert dc.relays == []

    def test_connect_wires_destinations_and_siblings(self, dc_pair):
        _, (a, b) = dc_pair
        a.connect(b)
        assert b.receiver in a.eunomia_replicas[0].destinations
        assert a.partitions[0].siblings[1] is b.partitions[0]

    def test_connect_to_self_rejected(self, dc_pair):
        _, (a, _) = dc_pair
        with pytest.raises(ValueError):
            a.connect(a)

    def test_ft_mode_builds_replica_group(self):
        env = Environment(seed=3)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(fault_tolerant=True, n_replicas=3)
        dc = Datacenter(env, 0, 2, 2, ConsistentHashRing(2), config)
        assert len(dc.eunomia_replicas) == 3
        assert dc.eunomia_replicas[0].peers == dc.eunomia_replicas[1:]

    def test_leader_helper_skips_crashed(self):
        env = Environment(seed=3)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(fault_tolerant=True, n_replicas=2)
        dc = Datacenter(env, 0, 2, 2, ConsistentHashRing(2), config)
        dc.start()
        env.run(until=0.1)
        assert dc.leader() is dc.eunomia_replicas[0]
        dc.eunomia_replicas[0].crash()
        env.run(until=3.0)  # past suspicion timeout
        assert dc.leader() is dc.eunomia_replicas[1]

    def test_fingerprint_empty_datacenters_agree(self, dc_pair):
        _, (a, b) = dc_pair
        assert a.fingerprint() == b.fingerprint()
        assert a.store_snapshot() == {}


class TestGeoSystemFacade:
    @pytest.fixture
    def system(self):
        spec = GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=2,
                             seed=8)
        return build_eunomia_system(spec, WorkloadSpec(read_ratio=0.8,
                                                       n_keys=32))

    def test_start_idempotent(self, system):
        system.start()
        clients_before = len(system.clients)
        system.start()
        assert len(system.clients) == clients_before
        system.run(0.5)
        assert system.total_throughput() >= 0

    def test_window_trims_run(self, system):
        system.run(2.0)
        lo, hi = system.window()
        assert 0.0 < lo < hi < 2.0

    def test_consecutive_runs_extend_time(self, system):
        system.run(1.0)
        assert system.env.now == pytest.approx(1.0)
        system.run(1.0)
        assert system.env.now == pytest.approx(2.0)

    def test_quiesce_stops_clients(self, system):
        system.run(1.0)
        system.quiesce(1.0)
        done = [c.ops_done for c in system.clients]
        system.env.run(until=system.env.now + 1.0)
        assert [c.ops_done for c in system.clients] == done

    def test_visibility_accessor_windows(self, system):
        system.run(2.0)
        all_points = system.metrics.point_series("vis_extra_ms:0->1")
        windowed = system.visibility_extra_ms(0, 1)
        assert len(windowed) <= len(all_points)

    def test_protocol_label(self, system):
        assert system.protocol == "eunomia"
