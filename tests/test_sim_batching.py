"""Property tests for the batched simulation core.

Two equivalence claims underpin every batching optimisation in
``repro.sim`` — if either broke, the goldens would drift and every
experiment figure would silently change:

1. **Scheduler backends are interchangeable.**  The slotted time-wheel
   (:class:`repro.sim.loop.TimeWheelLoop`) fires arbitrary mixes of
   one-shot, periodic, cancelled, and respawning events in exactly the
   same order as the reference binary heap, across ``run(until=...)``
   segment boundaries, including events beyond the wheel horizon (the
   overflow heap + migration path).

2. **``send_many`` is a loop of ``send``.**  Batched transmission over a
   link must produce byte-for-byte the same delivery log — per-message
   delivery times, per-link FIFO order, loss outcomes, and all four
   network counters — as sending the same messages one at a time,
   because both consume the network RNG in the same sequence.  Only the
   *event count* may differ (same-time groups collapse into one
   ``deliver_batch``), which is invisible at the (time, payload) level.

The protocol-level pin of the same claims is
``tests/test_protocol_goldens.py::test_time_wheel_reproduces_goldens``.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.sim.env import Environment
from repro.sim.latency import ConstantLatency, JitteredLatency
from repro.sim.loop import EventLoop, TimeWheelLoop
from repro.sim.network import Network
from repro.sim.process import Process

# ----------------------------------------------------------------------
# Property 1: time-wheel == heap, for arbitrary schedules
# ----------------------------------------------------------------------

#: base time unit, deliberately not a multiple of the wheel resolution so
#: events land mid-slot and slot rounding errors would be caught
_U = 0.00037


def _run_program(loop, one_shots, periodics, boundaries):
    """Execute a generated schedule on ``loop``; return its firing log.

    Each boundary is ``(units, mid_shots)``: after ``run(until=units*_U)``
    the mid-shots are scheduled *between* segments — exactly the windowed
    GeoSystem.run()/quiesce() pattern, where fresh events land in a wheel
    whose cursor already advanced (possibly far ahead, via the empty-ring
    overflow jump and a pushed-back event).
    """
    log = []
    handles = []
    ids = itertools.count()

    def fire_one(i, delay_units, respawn):
        log.append((loop.now, "one", i))
        if respawn:
            loop.schedule(delay_units * 0.5 * _U + _U,
                          fire_child, i)

    def fire_child(i):
        log.append((loop.now, "child", i))

    def schedule_one(delay_units, cancel, respawn):
        i = next(ids)
        event = loop.schedule(delay_units * _U, fire_one, i, delay_units,
                              respawn)
        if cancel:
            event.cancel()

    for shot in one_shots:
        schedule_one(*shot)

    for j, (interval_units, firings, phase_units) in enumerate(periodics):
        remaining = [firings]

        def fire_periodic(j=j, remaining=remaining):
            log.append((loop.now, "periodic", j))
            remaining[0] -= 1
            if remaining[0] == 0:
                handles[j].cancel()     # cancel from inside the callback

        handles.append(loop.schedule_periodic(
            interval_units * _U, fire_periodic,
            phase=None if phase_units == 0 else phase_units * _U))

    for units, mid_shots in boundaries:
        loop.run(until=units * _U)
        log.append(("segment", loop.now, loop.pending()))
        for shot in mid_shots:
            schedule_one(*shot)
    loop.run()
    return log


@settings(max_examples=60, deadline=None)
@given(
    one_shots=st.lists(
        st.tuples(st.integers(0, 60), st.booleans(), st.booleans()),
        max_size=10),
    periodics=st.lists(
        st.tuples(st.integers(1, 9), st.integers(1, 4), st.integers(0, 5)),
        max_size=3),
    boundaries=st.lists(
        st.tuples(
            st.integers(1, 70),
            st.lists(st.tuples(st.integers(0, 60), st.booleans(),
                               st.booleans()),
                     max_size=3)),
        max_size=3).map(lambda bs: sorted(bs, key=lambda b: b[0])),
    resolution_us=st.sampled_from([200, 1000, 5000]),
    wheel_slots=st.sampled_from([2, 4, 64]),
)
def test_time_wheel_matches_heap(one_shots, periodics, boundaries,
                                 resolution_us, wheel_slots):
    """Any mix of one-shots (some cancelled, some respawning), periodics
    (self-cancelling mid-run), and run-until segments fires identically on
    both backends.  Tiny wheels (2 slots at 200 us over delays up to ~22 ms)
    force nearly every event through the overflow heap and its migration
    path; large resolutions force many events into one slot.  Boundaries
    carry fresh one-shots scheduled *between* segments — including delays
    far shorter than the gap to the overflow head — so the wheel must keep
    its cursor sweepable after a ``run(until=...)`` push-back."""
    heap_loop = EventLoop()
    wheel_loop = TimeWheelLoop(resolution=resolution_us * 1e-6,
                               wheel_slots=wheel_slots)
    heap_log = _run_program(heap_loop, one_shots, periodics, boundaries)
    wheel_log = _run_program(wheel_loop, one_shots, periodics, boundaries)
    assert wheel_log == heap_log
    assert wheel_loop.processed_events == heap_loop.processed_events
    assert wheel_loop.now == heap_loop.now
    assert wheel_loop.pending() == heap_loop.pending() == 0


def test_wheel_cursor_rewinds_after_overflow_jump_push_back():
    """Regression: an event far beyond the wheel horizon makes the empty-ring
    fast path jump the cursor to the overflow head's slot; when that event is
    then pushed back past a ``run(until=...)`` boundary, the cursor must
    rewind — otherwise events scheduled between segments land in
    already-swept buckets, fire a whole lap late (after the far-future
    event), and drag ``now`` backwards."""
    for cls, kwargs in ((EventLoop, {}),
                        (TimeWheelLoop, {"resolution": 1e-3,
                                         "wheel_slots": 4096})):
        loop = cls(**kwargs)
        fired = []
        loop.schedule(10.0, fired.append, 10.0)   # beyond the ~4.1 s horizon
        loop.run(until=1.0)
        loop.schedule(0.5, fired.append, 1.5)     # lands behind a stale cursor
        loop.run()
        assert fired == [1.5, 10.0]
        assert loop.now == 10.0
        assert loop.pending() == 0


# ----------------------------------------------------------------------
# Property 2: send_many == loop of send
# ----------------------------------------------------------------------

class Probe:
    """Minimal network payload with an identity and a wire size."""

    __slots__ = ("ident", "size_bytes")

    def __init__(self, ident, size_bytes):
        self.ident = ident
        self.size_bytes = size_bytes


class Recorder(Process):
    """Logs every delivered probe as ``(sim_time, ident)``."""

    def __init__(self, env, name):
        super().__init__(env, name)
        self.log = []

    def on_probe(self, msg, src):
        self.log.append((self.now, msg.ident))


def _drive(batches, loss_rate, jitter, seed, batched):
    """Run one transmission schedule; return (delivery log, counters).

    Message identities are ``(batch_index, position)`` so the log exposes
    both which transmission a delivery came from and its in-batch rank.
    """
    env = Environment(seed=seed)
    latency = (JitteredLatency(0.0001, 0.0004) if jitter
               else ConstantLatency(0.0002))
    net = Network(env, latency=latency, loss_rate=loss_rate)
    sender = Recorder(env, "sender")
    sink = Recorder(env, "sink")
    for b, (start_units, count) in enumerate(batches):
        msgs = [Probe((b, k), (b * 5 + k * 7) % 23) for k in range(count)]
        if batched:
            env.loop.schedule(start_units * 1e-3,
                              lambda m=msgs: net.send_many(sender, sink, m))
        else:
            def fire(m=msgs):
                for msg in m:
                    net.send(sender, sink, msg)
            env.loop.schedule(start_units * 1e-3, fire)
    env.run()
    counters = (net.messages_attempted, net.messages_sent,
                net.messages_dropped, net.bytes_sent)
    return sink.log, counters


@settings(max_examples=60, deadline=None)
@given(
    batches=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 8)),
                     min_size=1, max_size=6,
                     unique_by=lambda batch: batch[0]),
    loss_rate=st.sampled_from([0.0, 0.35]),
    jitter=st.booleans(),
    seed=st.integers(0, 2**16),
)
def test_send_many_matches_send_loop(batches, loss_rate, jitter, seed):
    """Same seed, same messages: the batched and per-message transmissions
    must agree on every delivery time, each message's loss outcome, all
    four counters, and per-batch delivery order.  Constant latency makes
    whole batches collapse into ``deliver_batch`` groups (the interesting
    path); jittered latency scatters them into singletons; loss drops
    messages mid-batch, splitting groups.

    The full delivery *order* is additionally identical except for one
    documented tie-break: when two separate transmissions land at the very
    same instant (possible under jitter via the FIFO clamp), inline batch
    dispatch and the per-message service hop interleave same-time ties
    differently — times and payloads still match as a multiset, and each
    batch stays internally FIFO.  Without jitter, distinct send times give
    distinct delivery times, so the strict order must match too."""
    loop_log, loop_counters = _drive(batches, loss_rate, jitter, seed,
                                     batched=False)
    many_log, many_counters = _drive(batches, loss_rate, jitter, seed,
                                     batched=True)
    assert sorted(many_log) == sorted(loop_log)
    assert many_counters == loop_counters
    if not jitter:
        assert many_log == loop_log
    # Per-link FIFO: delivery times never decrease on a directed link.
    times = [t for t, _ in many_log]
    assert times == sorted(times)
    # Within every transmission, delivered messages keep their send order.
    for b in range(len(batches)):
        ranks = [k for _, (bb, k) in many_log if bb == b]
        assert ranks == sorted(ranks)


def test_send_many_from_crashed_source_counts_attempts():
    """The offered-load counter sees the whole batch even when the crashed
    source delivers none of it (the counter split ``send`` also honours)."""
    env = Environment(seed=3)
    net = Network(env, latency=ConstantLatency(0.0001))
    sender = Recorder(env, "sender")
    sink = Recorder(env, "sink")
    sender.crashed = True
    net.send_many(sender, sink, [Probe((0, k), 0) for k in range(5)])
    env.run()
    assert sink.log == []
    assert net.messages_attempted == 5
    assert net.messages_dropped == 5
    assert net.messages_sent == 0
    assert net.bytes_sent == 0


class CrashOnFirst(Recorder):
    """Crashes itself while handling its first delivery."""

    def on_probe(self, msg, src):
        super().on_probe(msg, src)
        if len(self.log) == 1:
            self.crash()


def test_deliver_batch_stops_when_handler_crashes_mid_batch():
    """A handler that crashes the process mid-batch must drop the remaining
    messages of that batch, matching the per-message path's _enqueue guard
    (regression: the inline fast path kept dispatching after the crash)."""
    logs = []
    for batched in (False, True):
        env = Environment(seed=7)
        net = Network(env, latency=ConstantLatency(0.0001))
        sender = Recorder(env, "sender")
        sink = CrashOnFirst(env, "sink")
        msgs = [Probe((0, k), 0) for k in range(3)]
        if batched:
            net.send_many(sender, sink, msgs)
        else:
            for msg in msgs:
                net.send(sender, sink, msg)
        env.run()
        logs.append(sink.log)
    assert logs[0] == logs[1]
    assert [ident for _, ident in logs[1]] == [(0, 0)]


def test_send_many_empty_and_singleton():
    """Degenerate batch sizes fall through to the plain paths."""
    env = Environment(seed=4)
    net = Network(env, latency=ConstantLatency(0.0001))
    sender = Recorder(env, "sender")
    sink = Recorder(env, "sink")
    net.send_many(sender, sink, [])
    assert net.messages_attempted == 0
    net.send_many(sender, sink, [Probe((0, 0), 11)])
    env.run()
    assert sink.log == [(0.0001, (0, 0))]
    assert net.messages_attempted == net.messages_sent == 1
    assert net.bytes_sent == 11
