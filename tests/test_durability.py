"""Tests for the durability subsystem: WAL, checkpoints, crash recovery.

The load-bearing property: with ``durability="wal"``, an *amnesia* crash
(``crash(lose_state=True)`` — protocol state wiped, only the WAL and
checkpoints survive) of a leader replica/group, followed by a rejoin
(checkpoint + log-suffix replay, then peer state transfer, then re-entering
the Ω election), yields a deduplicated delivered stable stream op-for-op
identical to the crash-free run.  The hypothesis property checks it at
K ∈ {1, 4} × R ∈ {2, 3}.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import Calibration
from repro.core import EunomiaConfig, build_stabilizer_stack
from repro.core.messages import AddOpBatch, PartitionHeartbeat
from repro.durability import (
    Checkpoint,
    CheckpointStore,
    RecoveryManager,
    WriteAheadLog,
)
from repro.harness.loadgen import build_eunomia_rig
from repro.sim import (
    ConstantLatency,
    DiskModel,
    Environment,
    FailureSchedule,
    Network,
    Process,
)
from repro.kvstore.types import Update


def make_op(ts, partition=0, seq=None):
    return Update(key=f"k{ts}", value=None, origin_dc=0,
                  partition_index=partition,
                  seq=seq if seq is not None else ts,
                  ts=ts, vts=(ts,), commit_time=0.0)


class DedupSink(Process):
    """A remote sink with Algorithm 5's per-origin dedup (see
    ``tests/test_sharded_stabilization.py`` for the rationale)."""

    def __init__(self, env):
        super().__init__(env, "sink", site=1)
        self.ops = []
        self.duplicates = 0
        self._last = {}

    def on_remote_stable_batch(self, msg, src):
        last = self._last.get(msg.origin_dc, (0, -1, -1))
        for op in msg.ops:
            key = op.order_key()
            if key <= last:
                self.duplicates += 1
                continue
            last = key
            self.ops.append(op)
        self._last[msg.origin_dc] = last


class AckFeeder(Process):
    """Feeds batches directly and swallows the replicas' Alg. 4 acks."""

    def on_batch_ack(self, msg, src):
        pass


def dedup_uids(collected):
    seen, out = set(), []
    for uid in collected:
        if uid not in seen:
            seen.add(uid)
            out.append(uid)
    return out


# ----------------------------------------------------------------------
# WAL unit behaviour
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_staged_records_are_volatile_until_commit(self):
        wal = WriteAheadLog("w")
        wal.stage_op(10, 0, 1, make_op(10))
        wal.stage_partition_time(1, 20)
        assert wal.staged == 2 and len(wal) == 0
        wal.lose_volatile()                     # amnesia before any fsync
        assert wal.staged == 0 and len(wal) == 0
        wal.stage_op(10, 0, 1, make_op(10))
        wal.commit()
        wal.lose_volatile()                     # committed records survive
        assert len(wal) == 1

    def test_flush_cost_covers_only_new_bytes(self):
        disk = DiskModel(fsync_latency_s=1e-3, byte_time_s=0.0)
        wal = WriteAheadLog("w", disk)
        wal.stage_op(10, 0, 1, make_op(10))
        assert wal.flush_cost() == pytest.approx(1e-3)
        # Nothing staged since the last scheduled flush: no second barrier.
        assert wal.flush_cost() == 0.0
        wal.stage_op(20, 0, 2, make_op(20))
        assert wal.flush_cost() == pytest.approx(1e-3)
        wal.commit()
        assert wal.flush_cost() == 0.0

    def test_truncate_drops_shipped_ops_and_all_pt_records(self):
        wal = WriteAheadLog("w")
        for ts in (10, 20, 30):
            wal.stage_op(ts, 0, ts, make_op(ts))
        wal.stage_partition_time(1, 40)
        wal.commit()
        assert wal.truncate(20) == 3            # ops 10, 20 + the PT record
        assert [r[1] for r in wal.records] == [30]

    def test_replay_rebuilds_partition_time_and_filters_floor(self):
        wal = WriteAheadLog("w")
        wal.stage_op(10, 0, 1, make_op(10))
        wal.stage_op(30, 0, 2, make_op(30, 0, 2))
        wal.stage_op(25, 1, 1, make_op(25, 1))
        wal.stage_partition_time(2, 50)
        wal.commit()
        partition_time = [0, 0, 0]
        entries = wal.replay(partition_time, floor_ts=10)
        assert partition_time == [30, 25, 50]
        assert [(e[0], e[1]) for e in entries] == [(30, 0), (25, 1)]


class TestCheckpointStore:
    def test_latest_wins(self):
        store = CheckpointStore("c")
        store.write(Checkpoint((1, 2), 1, 0.1))
        store.write(Checkpoint((3, 4), 3, 0.2))
        assert store.latest.partition_time == (3, 4)
        assert store.latest.floor == 3
        assert store.writes == 2


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestDurabilityConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="durability"):
            EunomiaConfig(durability="fsync-maybe").validate()

    def test_intervals_validated(self):
        with pytest.raises(ValueError, match="checkpoint"):
            EunomiaConfig(checkpoint_interval=0.0).validate()
        with pytest.raises(ValueError, match="state transfer"):
            EunomiaConfig(state_transfer_timeout=0.0).validate()

    def test_stack_attaches_durable_media_to_every_stabilizer(self):
        env = Environment(seed=1)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(n_shards=2, n_replicas=2, fault_tolerant=True,
                               durability="wal")
        stack = build_stabilizer_stack(env, 0, 4, config, Calibration())
        assert stack.recovery is not None
        assert all(s.wal is not None and s.checkpoints is not None
                   for s in stack.shards)
        # Coordinators hold no durable state (rebuilt from their shards).
        assert all(getattr(c, "wal", None) is None
                   for c in stack.coordinators)
        assert all(g.recovery is stack.recovery for g in stack.groups)

    def test_amnesia_recover_without_durability_raises(self):
        env = Environment(seed=2)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(n_shards=2, n_replicas=2, fault_tolerant=True)
        stack = build_stabilizer_stack(env, 0, 4, config, Calibration())
        group = stack.groups[0]
        group.crash(lose_state=True)
        with pytest.raises(RuntimeError, match="durability"):
            group.recover()


# ----------------------------------------------------------------------
# Ack-after-fsync: an acked op is always recoverable
# ----------------------------------------------------------------------
class TestAckDurability:
    def _shard_stack(self):
        env = Environment(seed=3)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(n_shards=2, n_replicas=2, fault_tolerant=True,
                               durability="wal", checkpoint_interval=0.05)
        stack = build_stabilizer_stack(env, 0, 4, config, Calibration())
        for proc in stack.processes():
            proc.start()
        return env, stack

    def test_ack_implies_durability(self):
        """Every op covered by an emitted BatchAck survives an amnesia
        crash: acks ride the disk lane behind the WAL flush."""
        acked = []

        class AckProbe(AckFeeder):
            def on_batch_ack(self, msg, src):
                acked.append((src, msg.ack_ts))

        env, stack = self._shard_stack()
        feeder = AckProbe(env, "feeder")
        for target in stack.uplink_targets(0):
            feeder.send(target, AddOpBatch(0, (make_op(100, 0, 1),)))
        env.run(until=0.02)
        assert acked and all(ts == 100 for _, ts in acked)
        shard = stack.groups[0].shards[0]
        shard.crash(lose_state=True)
        # The staged record was committed before the ack left the shard.
        partition_time = [0, 0, 0, 0]
        entries = shard.wal.replay(partition_time, floor_ts=0)
        assert partition_time[0] == 100
        assert [(e[0], e[1], e[2]) for e in entries] == [(100, 0, 1)]

    def test_heartbeat_advances_are_staged_not_flushed(self):
        env, stack = self._shard_stack()
        feeder = AckFeeder(env, "feeder")
        shard = stack.groups[0].shards[0]
        feeder.send(shard, PartitionHeartbeat(0, 500))
        env.run(until=0.01)
        assert shard.partition_time[0] == 500
        assert shard.wal.staged == 1        # no fsync of its own
        shard.crash(lose_state=True)
        assert shard.wal.staged == 0        # lost with the crash — safe


# ----------------------------------------------------------------------
# Checkpoint floor: shipped, never the shard's own running floor
# ----------------------------------------------------------------------
def test_checkpoint_floor_capped_at_shipped_stable_time():
    """A leader shard's announced floor runs ahead of the shipped stream
    while popped ops wait in the coordinator's merge queues; truncating
    the WAL at that optimistic floor would destroy exactly the ops a
    crash loses.  The durable floor must stay at what was shipped."""
    env = Environment(seed=4)
    Network(env, ConstantLatency(0.0001))
    config = EunomiaConfig(n_shards=2, n_replicas=2, fault_tolerant=True,
                           durability="wal")
    stack = build_stabilizer_stack(env, 0, 4, config, Calibration())
    sink = DedupSink(env)
    for propagator in stack.propagators():
        propagator.add_destination(sink)
    for proc in stack.processes():
        proc.start()
    feeder = AckFeeder(env, "feeder")
    # Shard 0 (partitions 0, 2) sees ops at 40 and 80 and its partitions
    # heartbeat to 100; shard 1 (partitions 1, 3) only reaches 50 — the
    # released StableTime is 50, so ts=80 is popped but never shipped.
    def feed(p, msg):
        for target in stack.uplink_targets(p):
            feeder.send(target, msg)
    feed(0, AddOpBatch(0, (make_op(40, 0, 1), make_op(80, 0, 2))))
    feed(1, AddOpBatch(1, (make_op(45, 1, 1),)))
    feed(0, PartitionHeartbeat(0, 100))
    feed(2, PartitionHeartbeat(2, 100))
    feed(1, PartitionHeartbeat(1, 50))
    feed(3, PartitionHeartbeat(3, 50))
    env.run(until=0.3)   # several stabilization + checkpoint intervals
    assert [op.ts for op in sink.ops] == [40, 45]
    leader_shard = stack.groups[0].shards[0]
    assert leader_shard.announced == 100          # optimistic floor
    assert leader_shard._durable_floor() == 50    # shipped floor
    assert leader_shard.checkpoints.latest.floor == 50
    # ts=80 must still be recoverable from the WAL after truncations.
    entries = leader_shard.wal.replay([0, 0, 0, 0], floor_ts=50)
    assert [e[0] for e in entries] == [80]


# ----------------------------------------------------------------------
# Amnesia crash + rejoin: op-for-op identical delivered stream
# ----------------------------------------------------------------------
def run_reference(ts_by_partition, batch_size=3):
    """K=1 single-stabilizer serialization of fixed per-partition timelines
    (the canonical reference, as in test_sharded_stabilization)."""
    from repro.core import EunomiaService

    env = Environment(seed=42)
    Network(env, ConstantLatency(0.0001))
    n_parts = len(ts_by_partition)
    config = EunomiaConfig(stabilization_interval=0.004)
    sink = DedupSink(env)
    service = EunomiaService(env, "eunomia", 0, n_parts, config)
    service.add_destination(sink)
    service.start()
    feeder = Process(env, "feeder")
    top = 0
    for p, ts_list in enumerate(ts_by_partition):
        ops = [make_op(ts, p, seq=i + 1) for i, ts in enumerate(ts_list)]
        prev = 0
        for i in range(0, len(ops), batch_size):
            chunk = ops[i:i + batch_size]
            feeder.send(service, AddOpBatch(p, tuple(chunk), prev_ts=prev))
            prev = chunk[-1].ts
        if ts_list:
            top = max(top, ts_list[-1])
    for p in range(n_parts):
        feeder.send(service, PartitionHeartbeat(p, top + 1))
    env.run(until=1.0)
    return [op.uid for op in sink.ops]


def run_amnesia_rejoin(ts_by_partition, n_shards, n_replicas, batch_size=3):
    """Feed fixed timelines into an Alg. 4 × K deployment with
    ``durability="wal"``; amnesia-crash the leader mid-feed, rejoin it
    after the interim leader has shipped, re-feed every chunk (the
    uplink's at-least-once retransmission, collapsed), and return the
    deduplicated delivered order plus the stack."""
    env = Environment(seed=42)
    Network(env, ConstantLatency(0.0001))
    n_parts = len(ts_by_partition)
    config = EunomiaConfig(stabilization_interval=0.004,
                           n_shards=n_shards, n_replicas=n_replicas,
                           fault_tolerant=True, durability="wal",
                           checkpoint_interval=0.02,
                           state_transfer_timeout=0.1,
                           replica_alive_interval=0.03,
                           replica_suspect_timeout=0.1)
    config.validate()
    stack = build_stabilizer_stack(env, 0, n_parts, config, Calibration())
    sink = DedupSink(env)
    for propagator in stack.propagators():
        propagator.add_destination(sink)
    for proc in stack.processes():
        proc.start()
    feeder = AckFeeder(env, "feeder")

    def feed(p, chunk, prev):
        batch = AddOpBatch(p, tuple(chunk), prev_ts=prev)
        for target in stack.uplink_targets(p):
            feeder.send(target, batch)

    per_part, top = [], 0
    for p, ts_list in enumerate(ts_by_partition):
        ops = [make_op(ts, p, seq=i + 1) for i, ts in enumerate(ts_list)]
        prev, entries = 0, []
        for i in range(0, len(ops), batch_size):
            chunk = ops[i:i + batch_size]
            entries.append((chunk, prev))
            prev = chunk[-1].ts
        per_part.append(entries)
        if ts_list:
            top = max(top, ts_list[-1])
    chunks = []
    for round_i in range(max((len(e) for e in per_part), default=0)):
        for p, entries in enumerate(per_part):
            if round_i < len(entries):
                chunks.append((p, *entries[round_i]))

    half = len(chunks) // 2
    for p, chunk, prev in chunks[:half]:
        feed(p, chunk, prev)
    # Let the leader commit WAL records, checkpoint, and ship a prefix —
    # then wipe it.
    env.run(until=0.06)
    unit = stack.crash_units()[0]
    unit.crash(lose_state=True)
    # Feed the rest while it is down; the interim leader ships it.
    for p, chunk, prev in chunks[half:]:
        feed(p, chunk, prev)
    env.run(until=0.3)
    unit.rejoin()
    # At-least-once delivery: replay every chunk (what the uplink's
    # retransmission machinery does for a live rejoiner); survivors
    # deduplicate via PartitionTime, the rejoiner backfills its gaps.
    for p, chunk, prev in chunks:
        feed(p, chunk, prev)
    for p in range(n_parts):
        beat = PartitionHeartbeat(p, top + 1)
        for target in stack.uplink_targets(p):
            feeder.send(target, beat)
    env.run(until=1.2)
    return [op.uid for op in sink.ops], sink, stack


timelines = st.lists(
    st.lists(st.integers(min_value=1, max_value=500),
             min_size=0, max_size=24),
    min_size=4, max_size=8,
).map(lambda per_part: [sorted(set(ts)) for ts in per_part])


class TestAmnesiaRejoinEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(timelines=timelines,
           shape=st.sampled_from([(1, 2), (1, 3), (4, 2), (4, 3)]))
    def test_rejoined_output_identical_to_crash_free_run(
            self, timelines, shape):
        """Recovery invariant: the deduplicated stable stream with an
        amnesia crash + rejoin of the leader equals the crash-free K=1
        serialization, at K ∈ {1, 4} × R ∈ {2, 3}."""
        n_shards, n_replicas = shape
        reference = run_reference(timelines)
        uids, _, _ = run_amnesia_rejoin(timelines, n_shards, n_replicas)
        assert uids == reference

    def test_rejoined_group_reclaims_leadership_with_correct_floor(self):
        tls = [[10, 30, 50, 70, 90], [20, 40, 60, 80],
               [15, 35, 55, 75], [25, 45, 65, 85]]
        uids, sink, stack = run_amnesia_rejoin(tls, n_shards=4, n_replicas=3)
        assert uids == run_reference(tls)
        group = stack.groups[0]
        assert group.is_leader()               # lowest id reclaimed Ω
        assert not group.coordinator._rejoining
        # Restores actually happened, from durable state.
        reports = stack.recovery.reports
        assert [r.name for r in reports] == [s.name for s in group.shards]
        # Each shard came back from durable state: a checkpoint, a log
        # suffix, or both (a freshly-truncated log can be legally empty).
        assert all(r.had_checkpoint or r.records_replayed > 0
                   for r in reports)
        # The adopted floor came from the survivors' shipped vector, not
        # the stale checkpoint: nothing below it was re-shipped into the
        # sink twice without being dropped.
        assert sink.ops == sorted(sink.ops, key=Update.order_key)


# ----------------------------------------------------------------------
# End-to-end on the §7.1 rig (real uplinks, retransmission, acks)
# ----------------------------------------------------------------------
class TestRigAmnesiaRejoin:
    @staticmethod
    def _collect(config, crash, seed=33, run_for=0.8, drain=0.8,
                 crash_at=0.15, rejoin_at=0.45):
        rig = build_eunomia_rig(4, config=config, seed=seed)
        rig.sink.record = True
        if crash:
            unit = rig.groups[0]
            rig.env.loop.schedule_at(
                crash_at, lambda: unit.crash(lose_state=True))
            rig.env.loop.schedule_at(rejoin_at, unit.rejoin)
        rig.run(run_for)
        for driver in rig.drivers:
            driver.stop()
        rig.env.run(until=rig.env.now + drain)
        return rig

    def test_sharded_group_amnesia_rejoin_end_to_end(self):
        """The acceptance drill in miniature: amnesia crash + rejoin of a
        sharded leader group under live uplink traffic (real acks and
        retransmissions) leaves the deduplicated stream identical."""
        config = EunomiaConfig(n_shards=2, n_replicas=2, fault_tolerant=True,
                               durability="wal", checkpoint_interval=0.1,
                               replica_alive_interval=0.05,
                               replica_suspect_timeout=0.16,
                               state_transfer_timeout=0.2)
        reference = self._collect(config, False).sink.collected
        rig = self._collect(config, True)
        assert rig.groups[0].is_leader()
        assert dedup_uids(rig.sink.collected) == reference

    def test_crash_during_transfer_window_rejoins_on_retry(self):
        """A crash that interrupts the state-transfer window must not
        strand the replica: the epoch bump killed the pending transfer
        timeout, so the next rejoin() has to re-drive the handshake (a
        stuck ``_rejoining`` would silently keep the replica out of the
        election forever)."""
        config = EunomiaConfig(n_replicas=3, fault_tolerant=True,
                               durability="wal", checkpoint_interval=0.1,
                               replica_alive_interval=0.05,
                               replica_suspect_timeout=0.16,
                               state_transfer_timeout=0.2)
        rig = build_eunomia_rig(4, config=config, seed=33)
        loop = rig.env.loop
        unit = rig.groups[0]
        loop.schedule_at(0.15, lambda: unit.crash(lose_state=True))
        # Take every peer down, so the transfer window at 0.45 has nobody
        # to answer it — then crash the rejoiner inside that window.
        loop.schedule_at(0.40, rig.groups[1].crash)
        loop.schedule_at(0.40, rig.groups[2].crash)
        loop.schedule_at(0.45, unit.rejoin)
        loop.schedule_at(0.50, unit.crash)          # plain crash-stop
        loop.schedule_at(0.80, unit.rejoin)
        loop.schedule_at(0.85, rig.groups[1].rejoin)
        loop.schedule_at(0.85, rig.groups[2].rejoin)
        rig.run(2.0)
        assert not unit._rejoining
        assert unit.is_leader()

    def test_k1_replica_amnesia_rejoin_end_to_end(self):
        config = EunomiaConfig(n_replicas=3, fault_tolerant=True,
                               durability="wal", checkpoint_interval=0.1,
                               replica_alive_interval=0.05,
                               replica_suspect_timeout=0.16,
                               state_transfer_timeout=0.2)
        reference = self._collect(config, False).sink.collected
        rig = self._collect(config, True)
        assert rig.groups[0].is_leader()
        assert dedup_uids(rig.sink.collected) == reference


# ----------------------------------------------------------------------
# Partial-group failures: one shard, not the whole pipeline
# ----------------------------------------------------------------------
class TestPartialGroupFailure:
    CONFIG = dict(n_shards=2, n_replicas=2, fault_tolerant=True,
                  replica_alive_interval=0.05, replica_suspect_timeout=0.16)

    @staticmethod
    def _collect(config, schedule_fn=None, seed=55):
        rig = build_eunomia_rig(4, config=config, seed=seed)
        rig.sink.record = True
        if schedule_fn is not None:
            schedule = FailureSchedule(rig.env)
            schedule_fn(schedule, rig)
            schedule.arm()
        rig.run(0.9)
        for driver in rig.drivers:
            driver.stop()
        rig.env.run(until=rig.env.now + 0.8)
        return rig

    def test_single_shard_crash_stalls_coordinator_then_resumes(self):
        """Killing one EunomiaShard of the leader group stalls the whole
        site's stable output (min over ShardStableTime stops moving; no
        failover — the Ω election watches coordinators), and the shard's
        rejoin resumes it with an unchanged serialization."""
        config = EunomiaConfig(**self.CONFIG)
        reference = self._collect(config).sink.collected

        def schedule(sched, rig):
            sched.crash_shard_at(0.15, rig.groups[0], 1)
            sched.recover_shard_at(0.5, rig.groups[0], 1)

        rig = self._collect(config, schedule)
        marks = rig.metrics.mark_times("eunomia_stable:dc0")
        # Stalled: nothing went stable between the crash (plus the
        # in-flight slack) and the shard's rejoin.
        assert not [t for t in marks if 0.2 <= t <= 0.5]
        # ...but output flowed again afterwards,
        assert [t for t in marks if t > 0.55]
        # with no failover (the group's coordinator never lost the lease),
        assert rig.groups[0].is_leader()
        assert not rig.groups[1].ops_stabilized
        # and the delivered stream is unchanged.
        assert dedup_uids(rig.sink.collected) == reference

    def test_single_shard_amnesia_rejoin_restores_from_wal(self):
        config = EunomiaConfig(durability="wal", checkpoint_interval=0.1,
                               **self.CONFIG)
        reference = self._collect(config).sink.collected

        def schedule(sched, rig):
            sched.crash_shard_at(0.15, rig.groups[0], 1, lose_state=True)
            sched.recover_shard_at(0.5, rig.groups[0], 1)

        rig = self._collect(config, schedule)
        shard = rig.groups[0].shards[1]
        assert not shard.state_lost
        reports = rig.groups[0].recovery.reports
        assert [r.name for r in reports] == [shard.name]
        # The live coordinator's shipped floor raised the recovery floor.
        assert reports[0].floor >= rig.groups[0].coordinator.shipped_floors[1] \
            or reports[0].floor > 0
        assert dedup_uids(rig.sink.collected) == reference

    def test_amnesia_shard_recover_without_durability_raises(self):
        env = Environment(seed=6)
        Network(env, ConstantLatency(0.0001))
        config = EunomiaConfig(n_shards=2, n_replicas=2, fault_tolerant=True)
        stack = build_stabilizer_stack(env, 0, 4, config, Calibration())
        group = stack.groups[0]
        group.crash_shard(0, lose_state=True)
        with pytest.raises(RuntimeError, match="durability"):
            group.recover_shard(0)
