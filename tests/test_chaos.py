"""Chaos-matrix tests: the three closed stalls, schedule determinism, and
a smoke slice of the randomized matrix.

Each "stall closure" test pins one of the single-point failures the chaos
issue named, and asserts *bounded* recovery — not just eventual health:

* a dead/unreachable GST aggregator used to freeze its datacenter's GST
  forever; partitions now re-elect by round-robin view advance;
* a crashed sequencer (or chain link) used to strand every in-flight
  request; partitions now retry with backoff and chains repair around the
  dead link;
* a recovered Eunomia partition used to come back with a dead uplink,
  freezing the whole DC's StableTime; ``recover()`` now re-arms it.
"""

import pytest

from repro.baselines import build_system
from repro.checker import CausalChecker, SessionHistory
from repro.geo.system import GeoSystemSpec
from repro.harness.loadgen import build_eunomia_rig
from repro.sim.failure import FailureSchedule
from repro.harness.chaos import (
    ChaosSchedule,
    FaultEvent,
    run_case,
    run_exactly_once_drill,
    sample_schedule,
)
from repro.workload import WorkloadSpec

SPEC = GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=2, seed=31)
WL = WorkloadSpec(read_ratio=0.75, n_keys=32)


# ----------------------------------------------------------------------
# Stall closures
# ----------------------------------------------------------------------
def test_gst_aggregator_reelection_bounds_the_stall():
    """An unreachable aggregator loses office within aggregator_timeout:
    the surviving partition elects itself, the GST keeps advancing while
    the old aggregator is cut off, and office converges back after heal."""
    system = build_system("gentlerain", SPEC, WL)
    dc0 = system.datacenters[0]
    old, other = dc0.partitions[0], dc0.partitions[1]
    samples = {}
    fs = system.failures()
    fs.partition_at(0.8, [old], [other])
    fs.at(0.9, lambda: samples.__setitem__("cut", other.summary), "s0")
    fs.at(1.3, lambda: samples.__setitem__("alone", other.summary), "s1")
    fs.heal_at(1.4, [old], [other])
    system.run(2.4)
    # re-election happened, bounded: within [0.8, 1.3] the survivor took
    # office and advanced its GST without the old aggregator
    assert other.aggregator_failovers >= 1
    assert samples["alone"] > samples["cut"]
    # after heal the DC converges back onto the min-index aggregator
    assert other.aggregator_view == 0
    assert old.is_aggregator and not other.is_aggregator
    assert other.summary > samples["alone"]


def test_chain_repair_bounds_sequencer_outage():
    """Crash the chain head mid-run: survivors repair the chain and keep
    assigning numbers *during* the outage; requesters' retries make the
    client path exactly-once; everything still converges and stays causal."""
    history = SessionHistory()
    system = build_system("sseq", SPEC, WL, history=history, chain_length=3)
    head = system.datacenters[0].extras[0]
    fs = system.failures()
    fs.crash_at(0.8, head)
    fs.recover_at(1.6, head)
    system.run(2.4)
    system.quiesce(2.5)
    # bounded recovery: assignments resumed while the head was still down
    # (repair window = suspect_timeout 0.16s + one retry round ≲ 0.3s)
    resumed = [t for t in system.metrics.mark_times("seq_assigned:dc0")
               if 1.2 < t < 1.6]
    assert resumed, "no assignments during the outage: chain never repaired"
    retries = sum(p.seq_retries for p in system.datacenters[0].partitions)
    assert retries > 0
    assert system.converged()
    checker = CausalChecker(history)
    assert checker.check() == []
    assert checker.check_write_read_pairs() == []


def test_plain_sequencer_crash_recovers_via_retries():
    """Without a chain, a crashed sequencer stalls its DC only until it
    recovers: partition retries (deduplicated at the sequencer) re-drive
    every lost request instead of stranding clients forever."""
    history = SessionHistory()
    system = build_system("sseq", SPEC, WL, history=history)
    seq = system.datacenters[0].extras[0]
    fs = system.failures()
    fs.crash_at(0.8, seq)
    fs.recover_at(1.2, seq)
    system.run(2.2)
    system.quiesce(2.5)
    after = [t for t in system.metrics.mark_times("seq_assigned:dc0")
             if t > 1.2]
    assert after, "sequencer never served again after recovery"
    assert sum(p.seq_retries for p in system.datacenters[0].partitions) > 0
    assert system.converged()
    assert CausalChecker(history).check() == []


def test_eunomia_partition_recovery_rearms_uplink():
    """A recovered Eunomia partition must restart its uplink: before the
    fix the DC's StableTime (min over per-partition batch clocks) froze
    forever, killing stabilization for the whole datacenter even though
    every other partition kept shipping."""
    rig = build_eunomia_rig(n_partitions=4)
    victim = rig.drivers[1]
    fs = FailureSchedule(rig.env)
    fs.crash_at(0.8, victim)
    fs.recover_at(1.2, victim)
    fs.arm()
    rig.run(2.4)
    stable = rig.metrics.mark_times("eunomia_stable:dc0")
    frozen = [t for t in stable if 1.0 < t <= 1.2]
    late = [t for t in stable if t > 1.5]
    assert not frozen, "StableTime advanced without the crashed partition"
    assert late, ("DC StableTime froze after partition recovery: "
                  "uplink was not re-armed")


# ----------------------------------------------------------------------
# Schedule determinism & serialization
# ----------------------------------------------------------------------
def test_sampled_schedules_are_deterministic_and_serializable():
    a = sample_schedule("eunomia", 42)
    b = sample_schedule("eunomia", 42)
    assert a == b
    assert a != sample_schedule("eunomia", 43)
    assert a != sample_schedule("sseq", 42)
    assert ChaosSchedule.from_json(a.to_json()) == a


def test_clock_mode_axis_is_deterministic_and_post_event():
    """The hybrid-vs-physical clock axis: sampled deterministically, both
    modes reachable, and drawn *after* the event draws — so a seed's fault
    stream is exactly what the pre-axis sampler produced."""
    a = sample_schedule("gentlerain", 1000)
    assert a.clock_mode in ("hybrid", "physical")
    assert a.clock_mode == sample_schedule("gentlerain", 1000).clock_mode
    modes = {sample_schedule("gentlerain", s).clock_mode
             for s in range(1000, 1012)}
    assert modes == {"hybrid", "physical"}
    # pre-axis JSON artifacts (no clock_mode/placement keys) still replay
    import json
    raw = json.loads(a.to_json())
    del raw["clock_mode"], raw["placement"]
    old = ChaosSchedule.from_json(json.dumps(raw))
    assert old.events == a.events
    assert (old.clock_mode, old.placement) == ("hybrid", "full")


def test_physical_clock_mode_case_passes_oracles():
    base = sample_schedule("gentlerain", 1000)
    forced = ChaosSchedule(protocol=base.protocol, seed=base.seed,
                           events=base.events, clock_mode="physical")
    result = run_case(forced)
    assert result.ok, result.failures


# ----------------------------------------------------------------------
# Region outages (partial placement only)
# ----------------------------------------------------------------------
def test_region_outage_sampling_targets_only_island_dcs():
    """Full placement never samples a region outage; the island placement
    does, and only ever aims it at the island DC (dc2), whose loss drops
    no inter-DC replication stream."""
    full_classes = {e.cls for s in range(1000, 1020)
                    for e in sample_schedule("cure", s).events}
    assert "region_outage" not in full_classes
    outages = [e for s in range(1000, 1020)
               for e in sample_schedule("cure", s,
                                        placement="island").events
               if e.cls == "region_outage"]
    assert outages, "island placement never sampled a region outage"
    assert {e.params["dc"] for e in outages} == {2}


def test_region_outage_island_converges_after_heal():
    """Crash every process in the island DC mid-run: forwarded clients
    retry through the outage, the island recovers, and all oracles —
    causal checks, placement routing, per-partition convergence, post-heal
    progress — hold."""
    schedule = ChaosSchedule(
        protocol="eunomia", seed=7, placement="island",
        events=[FaultEvent("region_outage", 0.6, 1.0, {"dc": 2})])
    result = run_case(schedule)
    assert result.ok, result.failures
    assert any(line.startswith("crash dc2/") for line in result.fired)
    assert any(line.startswith("recover dc2/") for line in result.fired)


def test_region_outage_rejects_replicated_region():
    """A DC whose partitions replicate elsewhere loses in-flight streams
    unrecoverably when the whole region crashes — the resolver refuses."""
    schedule = ChaosSchedule(
        protocol="gentlerain", seed=7, placement="island",
        events=[FaultEvent("region_outage", 0.6, 1.0, {"dc": 0})])
    with pytest.raises(ValueError, match="island"):
        run_case(schedule)


@pytest.mark.parametrize("protocol", ["eventual", "gentlerain"])
def test_failure_log_is_scheduler_invariant(protocol):
    """The same fault schedule produces the identical (time, label) log
    under the heap and the time-wheel scheduler backends."""
    def run(scheduler):
        spec = GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=2,
                             seed=17, scheduler=scheduler)
        system = build_system(protocol, spec, WL)
        victim = system.datacenters[0].partitions[1]
        other = system.datacenters[1].partitions[0]
        fs = system.failures()
        fs.crash_at(0.5, victim)
        fs.partition_at(0.6, [victim], [other], symmetric=False)
        fs.clock_drift_at(0.7, other.clock, 150.0, step_us=80.0)
        fs.recover_at(0.9, victim)
        fs.heal_at(1.0, [victim], [other])
        if system.ntp is not None:
            fs.ntp_outage(0.4, 1.1, system.ntp)
        system.run(1.5)
        return list(fs.log)

    heap_log = run("heap")
    wheel_log = run("wheel")
    assert heap_log == wheel_log
    assert len(heap_log) == 7


# ----------------------------------------------------------------------
# Matrix smoke slice (the full 20-seed matrix runs in the chaos CI job)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["gentlerain", "sseq"])
def test_chaos_case_smoke(protocol):
    result = run_case(sample_schedule(protocol, 1000))
    assert result.ok, result.failures
    assert result.fired            # the schedule actually injected faults


def test_exactly_once_drill_smoke():
    assert run_exactly_once_drill(0) == []
