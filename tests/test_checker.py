"""Tests for the causal-consistency checker itself.

The checker must (a) pass correct histories and (b) flag seeded violations —
a checker that never fires proves nothing.
"""

import pytest

from repro.checker import CausalChecker, OpRecord, SessionHistory


def rec(t, client, kind, key, vts, session_vts, value=None):
    return OpRecord(time=t, client=client, kind=kind, key=key, value=value,
                    vts=vts, session_vts=session_vts)


def checked(*records):
    history = SessionHistory()
    for record in records:
        history.record(record)
    return CausalChecker(history).check()


class TestMonotonicWrites:
    def test_dominating_update_passes(self):
        assert checked(
            rec(1.0, "c", "update", "k", (1, 0), (0, 0)),
            rec(2.0, "c", "update", "k", (2, 0), (1, 0)),
        ) == []

    def test_non_dominating_update_flagged(self):
        violations = checked(
            rec(1.0, "c", "update", "k", (5, 5), (0, 0)),
            rec(2.0, "c", "update", "k", (3, 9), (5, 5)),  # not > (5,5)
        )
        assert [v.guarantee for v in violations] == ["monotonic-writes"]

    def test_equal_vector_flagged(self):
        violations = checked(
            rec(1.0, "c", "update", "k", (1, 1), (1, 1)),
        )
        assert violations and violations[0].guarantee == "monotonic-writes"


class TestMonotonicReads:
    def test_rereading_same_version_passes(self):
        assert checked(
            rec(1.0, "c", "read", "k", (3, 2), (0, 0)),
            rec(2.0, "c", "read", "k", (3, 2), (3, 2)),
        ) == []

    def test_newer_version_passes(self):
        assert checked(
            rec(1.0, "c", "read", "k", (1, 1), (0, 0)),
            rec(2.0, "c", "read", "k", (2, 1), (1, 1)),
        ) == []

    def test_strictly_older_version_flagged(self):
        violations = checked(
            rec(1.0, "c", "read", "k", (2, 2), (0, 0)),
            rec(2.0, "c", "read", "k", (1, 2), (2, 2)),  # went backwards
        )
        assert [v.guarantee for v in violations] == ["monotonic-reads"]

    def test_concurrent_replacement_passes(self):
        """LWW may replace an observed version with a concurrent one."""
        assert checked(
            rec(1.0, "c", "read", "k", (2, 0), (0, 0)),
            rec(2.0, "c", "read", "k", (0, 2), (2, 0)),  # concurrent
        ) == []

    def test_concurrent_merge_false_positive_regression(self):
        """Two concurrent reads then a re-read of the first must pass.

        A checker comparing against the *merge* of observed vectors would
        wrongly flag this (the merge (2,2) dominates (2,0)).
        """
        assert checked(
            rec(1.0, "c", "read", "k", (2, 0), (0, 0)),
            rec(2.0, "c", "read", "k", (0, 2), (2, 0)),
            rec(3.0, "c", "read", "k", (2, 0), (2, 2)),
        ) == []

    def test_own_write_then_dominated_read_flagged(self):
        violations = checked(
            rec(1.0, "c", "update", "k", (4, 0), (3, 0)),
            rec(2.0, "c", "read", "k", (1, 0), (4, 0)),  # pre-write version
        )
        assert [v.guarantee for v in violations] == ["monotonic-reads"]

    def test_keys_tracked_independently(self):
        assert checked(
            rec(1.0, "c", "read", "a", (9, 9), (0, 0)),
            rec(2.0, "c", "read", "b", (1, 1), (9, 9)),  # different key: fine
        ) == []

    def test_clients_tracked_independently(self):
        assert checked(
            rec(1.0, "c1", "read", "k", (9, 9), (0, 0)),
            rec(2.0, "c2", "read", "k", (1, 1), (0, 0)),
        ) == []


class TestMetadataIntegrity:
    def test_matching_vectors_pass(self):
        history = SessionHistory()
        history.record(rec(1.0, "w", "update", "k", (3, 0), (0, 0), value="v1"))
        history.record(rec(2.0, "r", "read", "k", (3, 0), (0, 0), value="v1"))
        assert CausalChecker(history).check_write_read_pairs() == []

    def test_corrupted_vector_flagged(self):
        history = SessionHistory()
        history.record(rec(1.0, "w", "update", "k", (3, 0), (0, 0), value="v1"))
        history.record(rec(2.0, "r", "read", "k", (9, 9), (0, 0), value="v1"))
        violations = CausalChecker(history).check_write_read_pairs()
        assert [v.guarantee for v in violations] == ["metadata-integrity"]

    def test_unknown_values_ignored(self):
        history = SessionHistory()
        history.record(rec(1.0, "r", "read", "k", (1, 1), (0, 0),
                           value="preloaded"))
        assert CausalChecker(history).check_write_read_pairs() == []


class TestHistory:
    def test_empty_metadata_skipped(self):
        assert checked(rec(1.0, "c", "update", "k", (), ())) == []

    def test_sessions_and_updates_listing(self):
        history = SessionHistory()
        history.record(rec(2.0, "b", "update", "k", (1,), (0,), value="x"))
        history.record(rec(1.0, "a", "read", "k", (1,), (0,)))
        assert history.clients() == ["a", "b"]
        assert len(history.session("a")) == 1
        assert [r.value for r in history.all_updates()] == ["x"]
        assert history.total_ops == 2

    def test_violation_str(self):
        record = rec(1.0, "c", "read", "k", (1,), (0,))
        from repro.checker import Violation

        text = str(Violation("monotonic-reads", "c", record, "detail"))
        assert "monotonic-reads" in text and "detail" in text
