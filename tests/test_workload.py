"""Tests for the workload generator and key distributions."""

import random
from collections import Counter

import pytest

from repro.workload import (
    READ,
    UPDATE,
    UniformKeys,
    Workload,
    WorkloadSpec,
    ZipfKeys,
)


class TestDistributions:
    def test_uniform_in_range(self):
        dist = UniformKeys(100)
        rng = random.Random(0)
        assert all(0 <= dist.sample(rng) < 100 for _ in range(1000))

    def test_uniform_roughly_flat(self):
        dist = UniformKeys(10)
        rng = random.Random(1)
        counts = Counter(dist.sample(rng) for _ in range(20000))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_zipf_skews_toward_hot_keys(self):
        dist = ZipfKeys(1000, s=0.99)
        rng = random.Random(2)
        counts = Counter(dist.sample(rng) for _ in range(20000))
        hot = dist.hottest(10)
        hot_mass = sum(counts.get(k, 0) for k in hot) / 20000
        assert hot_mass > 0.20  # top-1% keys draw >20% of accesses

    def test_zipf_permutes_ranks_across_keyspace(self):
        dist = ZipfKeys(1000)
        hot = list(dist.hottest(20))
        assert hot != sorted(hot)  # not simply keys 0..19

    def test_zipf_deterministic_given_rng(self):
        a = [ZipfKeys(100).sample(random.Random(3)) for _ in range(50)]
        b = [ZipfKeys(100).sample(random.Random(3)) for _ in range(50)]
        assert a == b

    @pytest.mark.parametrize("cls", [UniformKeys, ZipfKeys])
    def test_rejects_empty_keyspace(self, cls):
        with pytest.raises(ValueError):
            cls(0)


class TestWorkloadSpec:
    def test_ratio_label(self):
        assert WorkloadSpec(read_ratio=0.9).ratio_label() == "90:10"
        assert WorkloadSpec(read_ratio=0.5).ratio_label() == "50:50"

    def test_build_uniform_and_zipf(self):
        assert isinstance(WorkloadSpec().build().keys, UniformKeys)
        spec = WorkloadSpec(distribution="zipf")
        assert isinstance(spec.build().keys, ZipfKeys)

    def test_build_unknown_distribution(self):
        with pytest.raises(ValueError):
            WorkloadSpec(distribution="mystery").build()

    def test_next_op_shape(self):
        workload = WorkloadSpec(read_ratio=1.0, n_keys=10,
                                value_bytes=128).build()
        kind, key, size = workload.next(random.Random(0))
        assert kind == READ
        assert 0 <= key < 10
        assert size == 128

    def test_read_ratio_respected(self):
        workload = WorkloadSpec(read_ratio=0.7, n_keys=10).build()
        rng = random.Random(5)
        kinds = Counter(workload.next(rng)[0] for _ in range(10000))
        assert kinds[READ] / 10000 == pytest.approx(0.7, abs=0.02)
        assert kinds[UPDATE] > 0

    def test_all_updates(self):
        workload = WorkloadSpec(read_ratio=0.0).build()
        rng = random.Random(6)
        assert all(workload.next(rng)[0] == UPDATE for _ in range(100))
