"""Tests for wire-size accounting and the S-Seq/A-Seq partition logic."""

import pytest

from repro.baselines.messages import SeqReply, SeqRequest
from repro.baselines.seqstore import SeqPartition
from repro.clocks import PhysicalClock
from repro.core import EunomiaConfig
from repro.core.messages import (
    AddOpBatch,
    ApplyRemote,
    ClientUpdate,
    RemoteData,
    RemoteStableBatch,
)
from repro.kvstore.types import METADATA_OVERHEAD_BYTES, Update
from repro.metrics import MetricsHub
from repro.sim import ConstantLatency, Environment, Network, Process


def make_update(value="v", value_bytes=100, vts=(5, 0, 0)):
    return Update(key="k", value=value, origin_dc=0, partition_index=0,
                  seq=1, ts=5, vts=vts, value_bytes=value_bytes)


class TestWireSizes:
    def test_metadata_only_batch_is_value_independent(self):
        meta = make_update(value=None, value_bytes=10_000)
        batch = AddOpBatch(0, (meta,))
        assert batch.size_bytes == meta.metadata_bytes

    def test_full_batch_includes_payload(self):
        full = make_update(value="x", value_bytes=100)
        batch = AddOpBatch(0, (full,))
        assert batch.size_bytes == full.size_bytes
        assert batch.size_bytes > full.metadata_bytes

    def test_remote_stable_batch_sums_ops(self):
        ops = (make_update(value=None), make_update(value=None))
        batch = RemoteStableBatch(0, ops)
        assert batch.size_bytes == 2 * ops[0].metadata_bytes

    def test_remote_data_carries_payload(self):
        data = RemoteData(make_update(value_bytes=256))
        assert data.size_bytes == 256 + 8 * 3 + METADATA_OVERHEAD_BYTES

    def test_apply_remote_is_metadata_sized(self):
        apply = ApplyRemote(make_update(value=None, value_bytes=999))
        assert apply.size_bytes == 8 * 3 + METADATA_OVERHEAD_BYTES

    def test_client_update_size(self):
        msg = ClientUpdate("k", "v", (0, 0, 0), value_bytes=64)
        assert msg.size_bytes == 64 + 24 + METADATA_OVERHEAD_BYTES

    def test_seq_request_metadata_sized(self):
        request = SeqRequest(make_update(value=None, value_bytes=5000))
        assert request.size_bytes == 8 * 3 + METADATA_OVERHEAD_BYTES


class FakeSequencer(Process):
    """Assigns numbers with a controllable delay."""

    def __init__(self, env, site=0):
        super().__init__(env, "seq", site=site)
        self.counter = 0
        self.requests = []

    def on_seq_request(self, msg, src):
        self.requests.append(msg)
        self.counter += 1
        m = 0
        vts = (self.counter,) + msg.update.vts[1:]
        self.send(src, SeqReply(msg.update.uid, vts))


class FakeClient(Process):
    def __init__(self, env):
        super().__init__(env, "client")
        self.replies = []

    def on_client_update_reply(self, msg, src):
        self.replies.append((self.now, msg.vts))


@pytest.fixture
def seq_rig(env):
    Network(env, ConstantLatency(0.001))
    sequencer = FakeSequencer(env)
    client = FakeClient(env)

    def build(synchronous):
        partition = SeqPartition(env, "p0", 0, 0, 3, PhysicalClock(env),
                                 EunomiaConfig(), synchronous=synchronous,
                                 metrics=MetricsHub())
        partition.set_sequencer(sequencer)
        return partition

    return env, sequencer, client, build


class TestSeqPartition:
    def test_sync_replies_after_sequencer(self, seq_rig):
        env, sequencer, client, build = seq_rig
        partition = build(synchronous=True)
        client.send(partition, ClientUpdate("k", "v", (0, 0, 0),
                                            request_id=1))
        env.run()
        reply_time, vts = client.replies[0]
        assert vts[0] == 1                     # sequencer-assigned
        # partition service (~4.1ms) + sequencer round trip (~2.2ms)
        assert reply_time > 0.007

    def test_async_replies_immediately(self, seq_rig):
        env, sequencer, client, build = seq_rig
        partition = build(synchronous=False)
        client.send(partition, ClientUpdate("k", "v", (0, 0, 0),
                                            request_id=1))
        env.run()
        reply_time, vts = client.replies[0]
        # partition service (~4.1ms) + one network hop; no sequencer wait
        assert reply_time < 0.0065
        assert vts == (0, 0, 0)                # client vector echoed
        assert sequencer.requests              # but the sequencer was told

    def test_store_write_waits_for_assignment(self, seq_rig):
        env, sequencer, client, build = seq_rig
        partition = build(synchronous=True)
        client.send(partition, ClientUpdate("k", "v", (0, 0, 0),
                                            request_id=1))
        env.run(until=0.004)                  # request still in flight
        assert partition.store.get("k") is None
        env.run()
        stored = partition.store.get("k")
        assert stored.value == "v"
        assert stored.vts[0] == 1

    def test_payload_ships_at_request_time(self, seq_rig):
        env, sequencer, client, build = seq_rig
        partition = build(synchronous=True)

        class Sink(Process):
            def __init__(self, e):
                super().__init__(e, "sink", site=1)
                self.got = []

            def on_remote_data(self, msg, src):
                self.got.append((self.now, msg.update))

        sink = Sink(env)
        partition.set_sibling(1, sink)
        client.send(partition, ClientUpdate("k", "v", (0, 0, 0),
                                            request_id=1))
        env.run()
        arrival, update = sink.got[0]
        # shipped before the sequencer round trip completed (~7.3ms)
        assert arrival < 0.007
        assert update.value == "v"

    def test_unsolicited_reply_ignored(self, seq_rig):
        env, sequencer, client, build = seq_rig
        partition = build(synchronous=True)
        sequencer.send(partition, SeqReply((0, 0, 99), (5, 0, 0)))
        env.run()
        assert partition.store.get("k") is None
