"""RunBuffer correctness: equivalence with the tree-backed buffer.

The load-bearing property behind ``buffer_backend="runs"``: under the
ingestion contract Algorithm 3 enforces (per-origin monotone timestamps —
FIFO links + Property 2, policed by ``PartitionTime``), the run buffer must
produce *op-for-op identical* stable serializations and identical ``min_ts``
to the paper's red–black tree buffer, for any interleaving of batches,
at-least-once redeliveries, heartbeats, and stabilization points.  The test
drives both backends through a miniature Algorithm 3 ingestion loop —
duplicate suppression included — and compares every observable after every
round.

A second group pins the safety story: a same-origin out-of-order insert
(impossible through the protocol, a FIFO/Property-2 violation if it ever
happens) must raise instead of silently corrupting the sorted-run invariant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EunomiaConfig
from repro.datastruct import OpBuffer, RunBuffer, TreeOpBuffer
from repro.geo.system import GeoSystemSpec, build_eunomia_system
from repro.harness.loadgen import build_eunomia_rig
from repro.workload import WorkloadSpec


# ----------------------------------------------------------------------
# The Algorithm 3 ingestion harness (shared by both buffers under test)
# ----------------------------------------------------------------------
class MiniStabilizer:
    """PartitionTime dedup + periodic FIND_STABLE over one buffer."""

    def __init__(self, buffer, n_partitions):
        self.buffer = buffer
        self.partition_time = [0] * n_partitions
        self.stable_time = 0
        self.emitted = []

    def add_batch(self, partition, ops):
        """Alg. 3 lines 1–6: skip duplicates, advance PartitionTime."""
        pt = self.partition_time[partition]
        for ts, seq in ops:
            if ts <= pt:
                continue  # at-least-once redelivery
            pt = ts
            if ts > self.stable_time:
                self.buffer.add(ts, partition, seq, (ts, partition, seq))
        self.partition_time[partition] = pt

    def heartbeat(self, partition, ts):
        if ts > self.partition_time[partition]:
            self.partition_time[partition] = ts

    def stabilize(self):
        """Alg. 3 lines 7–11: emit the ordered stable prefix."""
        stable = min(self.partition_time)
        if stable > self.stable_time:
            self.stable_time = stable
        run = self.buffer.pop_stable(self.stable_time)
        self.emitted.extend(run)
        return run


# One script = an interleaved sequence of protocol events.  Timestamps per
# partition are made monotone by construction (the uplink guarantees this);
# duplicates are injected by re-sending a batch verbatim.
events = st.lists(
    st.one_of(
        st.tuples(st.just("batch"), st.integers(0, 3),
                  st.lists(st.integers(1, 8), min_size=1, max_size=5)),
        st.tuples(st.just("dup_last"), st.integers(0, 3)),
        st.tuples(st.just("heartbeat"), st.integers(0, 3),
                  st.integers(1, 30)),
        st.tuples(st.just("stabilize")),
    ),
    max_size=60,
)


def run_script(script, buffer):
    """Feed one event script; return (emitted runs, min_ts trace)."""
    stab = MiniStabilizer(buffer, n_partitions=4)
    clock = [0] * 4
    seq = [0] * 4
    last_batch = [None] * 4
    min_trace = []
    for event in script:
        kind = event[0]
        if kind == "batch":
            _, p, increments = event
            batch = []
            for inc in increments:
                clock[p] += inc
                seq[p] += 1
                batch.append((clock[p], seq[p]))
            last_batch[p] = batch
            stab.add_batch(p, batch)
        elif kind == "dup_last":
            _, p = event
            if last_batch[p]:
                stab.add_batch(p, last_batch[p])  # verbatim retransmission
        elif kind == "heartbeat":
            _, p, inc = event
            clock[p] += inc
            stab.heartbeat(p, clock[p])
        else:
            stab.stabilize()
        min_trace.append(buffer.min_ts())
    # Final heartbeats + stabilize drain everything (as quiescing does).
    top = max(clock) + 1
    for p in range(4):
        stab.heartbeat(p, top)
    stab.stabilize()
    min_trace.append(buffer.min_ts())
    assert len(buffer) == 0
    return stab.emitted, min_trace


class TestRunBufferEquivalence:
    @given(script=events)
    @settings(max_examples=120, deadline=None)
    def test_identical_serialization_and_min_ts_vs_rbtree(self, script):
        runs_out, runs_min = run_script(script, OpBuffer(backend="runs"))
        tree_out, tree_min = run_script(script, OpBuffer(backend="rbtree"))
        assert runs_out == tree_out     # bit-identical stable serialization
        assert runs_min == tree_min     # same stability floor at every step

    @given(script=events, drop_at=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_drop_stable_equals_pop_stable_count(self, script, drop_at):
        """The follower fast path prunes exactly the materialized prefix."""
        popper = MiniStabilizer(OpBuffer(backend="runs"), 4)
        dropper = MiniStabilizer(OpBuffer(backend="runs"), 4)
        clock = [0] * 4
        seq = [0] * 4
        for event in script:
            if event[0] != "batch":
                continue
            _, p, increments = event
            batch = []
            for inc in increments:
                clock[p] += inc
                seq[p] += 1
                batch.append((clock[p], seq[p]))
            popper.add_batch(p, batch)
            dropper.add_batch(p, batch)
        popped = popper.buffer.pop_stable(drop_at)
        dropped = dropper.buffer.drop_stable(drop_at)
        assert dropped == len(popped)
        assert len(dropper.buffer) == len(popper.buffer)
        assert dropper.buffer.min_ts() == popper.buffer.min_ts()


class TestMonotonicityContract:
    def test_out_of_order_same_origin_insert_raises(self):
        buf = RunBuffer()
        buf.add(10, 0, 1, "a")
        with pytest.raises(ValueError, match="non-monotone insert"):
            buf.add(9, 0, 2, "b")
        # equal timestamps are a violation too (Alg. 2 stamps strictly)
        with pytest.raises(ValueError, match="non-monotone insert"):
            buf.add(10, 0, 3, "c")
        # the buffer degraded safely: existing state is intact and usable
        assert len(buf) == 1
        assert buf.min_ts() == 10
        buf.add(11, 0, 4, "d")
        assert buf.pop_stable(11) == ["a", "d"]

    def test_other_origins_unaffected_by_one_origin_order(self):
        buf = RunBuffer()
        buf.add(10, 0, 1, "a")
        buf.add(5, 1, 1, "b")    # lower ts, different origin: fine
        assert buf.pop_stable(10) == ["b", "a"]

    def test_stabilizer_never_trips_the_contract(self):
        """Through the real protocol, redeliveries never reach the buffer."""
        stab = MiniStabilizer(RunBuffer(), 2)
        stab.add_batch(0, [(5, 1), (9, 2)])
        stab.add_batch(0, [(5, 1), (9, 2)])      # full retransmission
        stab.add_batch(0, [(9, 2), (12, 3)])     # overlapping suffix resend
        assert len(stab.buffer) == 3
        stab.heartbeat(1, 20)
        assert stab.stabilize() == [(5, 0, 1), (9, 0, 2), (12, 0, 3)]


# ----------------------------------------------------------------------
# End-to-end: the backend is an implementation strategy, not a semantics
# ----------------------------------------------------------------------
class TestBackendEndToEnd:
    @staticmethod
    def _rig_sequence(backend, n_shards=1):
        config = EunomiaConfig(buffer_backend=backend, n_shards=n_shards)
        rig = build_eunomia_rig(8, config=config, seed=33)
        rig.sink.record = True
        rig.run(0.4)
        for driver in rig.drivers:
            driver.stop()
        rig.env.run(until=rig.env.now + 0.6)
        return rig.sink.collected

    def test_rig_sequence_identical_across_backends(self):
        reference = self._rig_sequence("rbtree")
        assert reference, "rbtree rig emitted nothing"
        assert self._rig_sequence("runs") == reference
        assert self._rig_sequence("avl") == reference

    def test_sharded_rig_with_runs_backend_matches(self):
        assert (self._rig_sequence("runs", n_shards=4)
                == self._rig_sequence("rbtree", n_shards=1))

    def test_geo_system_backends_converge_identically(self):
        spec = GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=2,
                             seed=13)
        wl = WorkloadSpec(read_ratio=0.8, n_keys=40)
        snapshots = {}
        for backend in ("runs", "rbtree"):
            config = EunomiaConfig(buffer_backend=backend)
            system = build_eunomia_system(spec, wl, config=config)
            system.run(2.0)
            system.quiesce(2.0)
            assert system.converged()
            stabilizer = system.datacenters[0].eunomia_replicas[0]
            expected = RunBuffer if backend == "runs" else TreeOpBuffer
            assert isinstance(stabilizer.buffer, expected)
            snapshots[backend] = system.snapshots()
        assert snapshots["runs"] == snapshots["rbtree"]

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown buffer backend"):
            EunomiaConfig(buffer_backend="splay").validate()
