"""Tests for latency models and the paper's topology."""

import random

import pytest

from repro.sim.latency import (
    PAPER_RTT_MS,
    ConstantLatency,
    JitteredLatency,
    RttMatrix,
    paper_topology,
)


class Site:
    def __init__(self, site):
        self.site = site


RNG = random.Random(3)


def test_constant_latency():
    model = ConstantLatency(0.005)
    assert model.delay(Site(0), Site(1), RNG) == 0.005


def test_jittered_latency_bounds():
    model = JitteredLatency(base_s=0.01, jitter_s=0.002)
    for _ in range(100):
        d = model.delay(Site(0), Site(1), RNG)
        assert 0.01 <= d <= 0.012


def test_paper_rtt_values():
    assert PAPER_RTT_MS[0][1] == 80.0
    assert PAPER_RTT_MS[1][2] == 160.0
    model = paper_topology()
    # one-way = RTT/2
    assert model.one_way_s(0, 1) == pytest.approx(0.040)
    assert model.one_way_s(1, 2) == pytest.approx(0.080)


def test_intra_site_delay():
    model = RttMatrix(PAPER_RTT_MS, intra_us=150.0, jitter_frac=0.0)
    assert model.one_way_s(2, 2) == pytest.approx(150e-6)


def test_jitter_fraction_bounds():
    model = RttMatrix(PAPER_RTT_MS, jitter_frac=0.02)
    base = model.one_way_s(0, 1)
    for _ in range(200):
        d = model.delay(Site(0), Site(1), RNG)
        assert base <= d <= base * 1.021


def test_synthetic_topology_for_other_sizes():
    model = paper_topology(n_sites=5)
    assert model.n_sites == 5
    # ring distances: 1 hop = 80ms RTT, 2 hops = 160ms
    assert model.rtt_ms[0][1] == 80.0
    assert model.rtt_ms[0][2] == 160.0
    assert model.rtt_ms[0][4] == 80.0  # wraps around
    # symmetric, zero diagonal
    for i in range(5):
        assert model.rtt_ms[i][i] == 0.0
        for j in range(5):
            assert model.rtt_ms[i][j] == model.rtt_ms[j][i]


def test_asymmetry_preserved():
    """Synthetic topologies keep near/far pairs (GentleRain's nemesis)."""
    model = paper_topology(n_sites=4)
    distances = {model.rtt_ms[0][j] for j in range(1, 4)}
    assert len(distances) > 1
