"""Observability layer (repro.obs): invariance, accuracy, and wiring.

Two properties carry the whole design and get the heaviest coverage
here:

* **Golden invariance** — attaching the full surface (sampled tracing +
  SLO sketches + gauge scraper) must not move a single bit of any
  protocol's golden digest.  The instruments draw no randomness, send no
  messages, and schedule only read-only periodics, so ``observe=True``
  runs must reproduce ``tests/golden/baseline_goldens.json`` exactly.
* **Sketch accuracy** — the log-bin histogram promises every quantile
  within its relative-error bound of the exact nearest-rank value; a
  hypothesis property checks it against arbitrary value sets.
"""

import json
import math
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import build_system
from repro.geo.system import GeoSystemSpec
from repro.harness.goldens import capture_golden
from repro.metrics.collector import MetricsHub
from repro.metrics.summary import EmptySeriesWarning, percentile
from repro.obs import (
    STAGES,
    LogBinHistogram,
    P2Quantile,
    Tracer,
    chrome_trace,
    render_slo_report,
)
from repro.workload.generator import WorkloadSpec

GOLDENS = json.loads(
    (Path(__file__).parent / "golden" / "baseline_goldens.json").read_text())
STRICT_FIELDS = ("fingerprints", "snapshot_sha", "stable_sha",
                 "vis_sorted_sha", "ops", "converged")
PROTOCOLS = ("eventual", "gentlerain", "cure", "sseq", "aseq", "eunomia")


class _Uid:
    """Minimal update stand-in: anything with ``.uid`` + ``.key``."""

    def __init__(self, dc, part, seq):
        self.uid = (dc, part, seq)
        self.origin_dc = dc
        self.key = f"k{seq}"


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_tracer_sampling_is_deterministic_and_thin():
    tracer = Tracer(sample_every=8)
    picks = [tracer.sampled((0, 1, seq)) for seq in range(4096)]
    assert picks == [tracer.sampled((0, 1, seq)) for seq in range(4096)]
    rate = sum(picks) / len(picks)
    assert 0.05 < rate < 0.25  # ~1/8 with hash jitter
    # sample_every=1 traces everything
    assert all(Tracer(sample_every=1).sampled((d, p, s))
               for d in range(3) for p in range(2) for s in range(16))


def test_tracer_span_lifecycle_and_dedup():
    tracer = Tracer(sample_every=1)
    up = _Uid(0, 1, 7)
    span = tracer.commit(up, 1.0, issued_at=0.5)
    assert span is not None
    tracer.stage(up, "replicate", 1.01, 0)
    tracer.stage_once(up, "recv_apply", 1.05, 2)
    tracer.stage_once(up, "recv_apply", 1.09, 2)   # retransmission: ignored
    tracer.stage_once(up, "recv_apply", 1.06, 1)   # other site: kept
    tracer.stage_once(up, "visible", 1.07, 1)
    assert span.stage_times("issue") == [(0.5, 0)]
    assert span.stage_times("commit") == [(1.0, 0)]
    assert span.stage_times("recv_apply") == [(1.05, 2), (1.06, 1)]
    # sorted_events is time-major, pipeline-order minor
    stages = [s for s, _, _ in span.sorted_events()]
    assert stages[0] == "issue" and stages[1] == "commit"
    assert {s for s, _, _ in span.events} <= set(STAGES)


def test_tracer_wal_group_commit_fanout():
    tracer = Tracer(sample_every=1)
    a, b = _Uid(0, 0, 1), _Uid(0, 0, 2)
    for up in (a, b):
        tracer.commit(up, 1.0)
        tracer.wal_staged("dc0/wal", up, 1.0, 0)
    tracer.wal_synced("dc0/wal", 1.2, 0)
    for up in (a, b):
        span = tracer.spans[up.uid]
        assert span.stage_times("wal_stage") == [(1.0, 0)]
        assert span.stage_times("wal_fsync") == [(1.2, 0)]
    # a second fsync of the same WAL touches nothing (pending was drained)
    tracer.wal_synced("dc0/wal", 1.4, 0)
    assert tracer.spans[a.uid].stage_times("wal_fsync") == [(1.2, 0)]


# ----------------------------------------------------------------------
# Golden invariance — the acceptance criterion
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_observability_preserves_goldens(protocol):
    """Tracing + sketches + gauges on → bit-identical golden digest."""
    golden = next(g for g in GOLDENS
                  if g["protocol"] == protocol and g["seed"] == 1234)
    kwargs = {"pending_backend": "scan"} if protocol == "cure" else {}
    observed = capture_golden(protocol, 1234, observe=True, **kwargs)
    for field in STRICT_FIELDS:
        assert observed[field] == golden[field], (
            f"{protocol}: observability changed golden field {field!r}")


# ----------------------------------------------------------------------
# Sketches
# ----------------------------------------------------------------------
def _nearest_rank(values, pct):
    ordered = sorted(values)
    return ordered[max(1, math.ceil(pct / 100.0 * len(ordered))) - 1]


@given(values=st.lists(st.floats(min_value=1e-3, max_value=1e5,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=300),
       q=st.sampled_from([50.0, 90.0, 99.0, 99.9]))
@settings(max_examples=60, deadline=None)
def test_logbin_quantile_within_relative_error(values, q):
    rel_err = 0.01
    hist = LogBinHistogram(rel_err=rel_err)
    for v in values:
        hist.add(v)
    exact = _nearest_rank(values, q)
    approx = hist.quantile(q)
    assert abs(approx - exact) <= 2 * rel_err * exact + 1e-9


def test_logbin_merge_and_zero_bucket():
    a, b = LogBinHistogram(), LogBinHistogram()
    for v in (0.0, 0.0, 5.0):
        a.add(v)
    for v in (10.0, 20.0):
        b.add(v)
    a.merge(b)
    assert a.n == 5 and a.min == 0.0 and a.max == 20.0
    assert a.quantile(10.0) == 0.0          # zero bucket dominates low tail
    assert a.quantile(100.0) == pytest.approx(20.0, rel=0.05)
    with pytest.raises(ValueError):
        a.merge(LogBinHistogram(rel_err=0.05))


def test_p2_tracks_median_of_uniform_ramp():
    est = P2Quantile(0.5)
    for i in range(1, 1001):
        est.add(float(i))
    assert est.value == pytest.approx(500.0, rel=0.05)
    small = P2Quantile(0.9)
    for v in (3.0, 1.0, 2.0):
        small.add(v)
    assert small.value == 3.0               # exact below 5 observations


def test_metrics_hub_sketch_registry():
    hub = MetricsHub()
    sk = hub.sketch("op_ms")
    sk.add(4.0)
    assert hub.sketch("op_ms") is sk        # same name -> same sketch
    hub.observe("op_ms", 6.0)
    assert sk.n == 2


# ----------------------------------------------------------------------
# Metrics fixes (satellites a + f)
# ----------------------------------------------------------------------
def test_percentile_empty_warns_and_strict_raises():
    with pytest.warns(EmptySeriesWarning):
        assert percentile([], 99.0) == 0.0
    with pytest.raises(ValueError, match="empty"):
        percentile([], 99.0, strict=True)
    with warnings.catch_warnings():
        warnings.simplefilter("error")      # non-empty input must not warn
        assert percentile([1.0, 3.0], 50.0) == 2.0


def test_metrics_hub_queries_return_copies():
    hub = MetricsHub()
    hub.record("lat", 1.0)
    hub.mark("ops", 0.5)
    hub.point("gauge", 0.5, 2.0)
    for got, again in [(hub.sample_values("lat"), hub.sample_values("lat")),
                       (hub.mark_times("ops"), hub.mark_times("ops")),
                       (hub.point_series("gauge"), hub.point_series("gauge"))]:
        assert got == again
        got.clear()
        assert again != [] and got == []    # mutation did not reach the hub
    assert hub.sample_values("lat") == [1.0]


# ----------------------------------------------------------------------
# End-to-end: gauges, report, chrome trace
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def observed_run():
    spec = GeoSystemSpec(n_dcs=3, partitions_per_dc=2, clients_per_dc=2,
                         seed=11)
    system = build_system("eunomia", spec, WorkloadSpec(read_ratio=0.75,
                                                        n_keys=64))
    obs = system.observe(sample_every=4)
    system.run(1.5)
    system.quiesce(1.5)
    return system, obs


def test_gauge_scraper_records_nonnegative_series(observed_run):
    system, obs = observed_run
    for dc in range(3):
        for name in ("stab_lag_ms", "receiver_backlog", "runbuffer_depth",
                     "uplink_pending"):
            points = system.metrics.point_series(f"gauge:{name}:dc{dc}")
            assert points, f"gauge:{name}:dc{dc} never scraped"
            assert all(v >= 0.0 for _, v in points)
    lag = [v for _, v in system.metrics.point_series("gauge:stab_lag_ms:dc0")]
    assert max(lag) > 0.0                   # lag is real, not a dead zero


def test_gst_family_reports_pending_depth_gauge():
    spec = GeoSystemSpec(n_dcs=2, partitions_per_dc=2, clients_per_dc=2,
                         seed=3)
    system = build_system("gentlerain", spec,
                          WorkloadSpec(read_ratio=0.5, n_keys=32))
    system.observe(sample_every=8)
    system.run(1.0)
    system.quiesce(1.0)
    for dc in range(2):
        points = system.metrics.point_series(f"gauge:pending_depth:dc{dc}")
        assert points and all(v >= 0.0 for _, v in points)


def test_slo_report_renders_all_tables(observed_run):
    system, obs = observed_run
    report = render_slo_report(system.metrics, tracer=obs.tracer)
    assert "operation latency" in report
    assert "remote visibility latency" in report
    assert "stabilization lag" in report
    assert "dc0->dc1" in report and "sampled spans" in report
    assert "no SLO data recorded" in render_slo_report(MetricsHub())


def test_chrome_trace_export_shape(observed_run):
    system, obs = observed_run
    trace = chrome_trace(tracer=obs.tracer, metrics=system.metrics)
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    phases = {e["ph"] for e in events}
    assert {"M", "X", "C"} <= phases
    slices = [e for e in events if e["ph"] == "X"]
    assert slices and all(e["dur"] >= 0 and e["ts"] >= 0 for e in slices)
    assert {e["name"] for e in slices} <= set(STAGES)
    counters = [e for e in events if e["ph"] == "C"]
    assert any("stab_lag_ms" in e["name"] for e in counters)
    json.dumps(trace)                       # must be serializable as-is


def test_service_rig_observe_opens_spans_at_ingest():
    from repro.core.config import EunomiaConfig
    from repro.harness.loadgen import build_eunomia_rig

    rig = build_eunomia_rig(4, config=EunomiaConfig(durability="wal"))
    tracer = rig.observe(sample_every=4)
    rig.run(1.0)
    assert len(tracer) > 0
    stages = {s for span in tracer.iter_spans() for s, _, _ in span.events}
    # emulator loads have no client/commit path: spans open at ingestion
    # and still pick up the WAL group-commit + propagation stages
    assert {"ingest", "wal_stage", "wal_fsync", "propagate"} <= stages


def test_chaos_case_collects_mttr_and_trace():
    from repro.harness.chaos import run_case, sample_schedule

    schedule = sample_schedule("eunomia", seed=5)
    result = run_case(schedule)
    assert result.ok, result.failures
    assert result.mttr and all(
        m["mttr_s"] is None or m["mttr_s"] >= 0.0 for m in result.mttr)
    assert result.trace is not None
    cats = {e.get("cat") for e in result.trace["traceEvents"]}
    assert "fault" in cats                  # fault instants on their track
